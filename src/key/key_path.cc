#include "key/key_path.h"

#include <algorithm>
#include <bit>

#include "util/macros.h"
#include "util/rng.h"

namespace pgrid {

namespace {

constexpr size_t kBitsPerWord = 64;

size_t WordsFor(size_t bits) { return (bits + kBitsPerWord - 1) / kBitsPerWord; }

}  // namespace

KeyPath::KeyPath(const KeyPath& other) : length_(other.length_) {
  if (other.heap_words_ == 0) {
    inline_word_ = other.inline_word_;
  } else {
    // Copies shrink to the exact canonical word count; any slack capacity in
    // the source was a growth artifact, not state.
    const size_t n = other.word_count();
    heap_ = new uint64_t[n];
    std::copy(other.heap_, other.heap_ + n, heap_);
    heap_words_ = static_cast<uint32_t>(n);
  }
}

KeyPath& KeyPath::operator=(const KeyPath& other) {
  if (this != &other) {
    KeyPath tmp(other);
    Swap(tmp);
  }
  return *this;
}

KeyPath::KeyPath(KeyPath&& other) noexcept
    : heap_words_(other.heap_words_), length_(other.length_) {
  if (heap_words_ == 0) {
    inline_word_ = other.inline_word_;
  } else {
    heap_ = other.heap_;
  }
  other.inline_word_ = 0;
  other.heap_words_ = 0;
  other.length_ = 0;
}

KeyPath& KeyPath::operator=(KeyPath&& other) noexcept {
  if (this != &other) {
    KeyPath tmp(std::move(other));
    Swap(tmp);
  }
  return *this;
}

KeyPath::~KeyPath() {
  if (heap_words_ != 0) delete[] heap_;
}

void KeyPath::Swap(KeyPath& other) noexcept {
  // The union holds either variant as raw 8 bytes; swapping the storage plus
  // the discriminator (heap_words_) swaps the representations.
  std::swap(inline_word_, other.inline_word_);
  std::swap(heap_words_, other.heap_words_);
  std::swap(length_, other.length_);
}

KeyPath KeyPath::MakeZeroed(size_t length) {
  KeyPath out;
  out.length_ = static_cast<uint32_t>(length);
  if (length > kBitsPerWord) {
    const size_t n = WordsFor(length);
    out.heap_ = new uint64_t[n]();
    out.heap_words_ = static_cast<uint32_t>(n);
  }
  return out;
}

Result<KeyPath> KeyPath::FromString(std::string_view bits) {
  KeyPath out;
  for (char c : bits) {
    if (c == '0') {
      out.PushBack(0);
    } else if (c == '1') {
      out.PushBack(1);
    } else {
      return Status::InvalidArgument(std::string("invalid bit character '") + c +
                                     "' in key path");
    }
  }
  return out;
}

KeyPath KeyPath::FromUint64(uint64_t value, size_t length) {
  PGRID_CHECK_LE(length, kBitsPerWord);
  KeyPath out;
  for (size_t i = 0; i < length; ++i) {
    // Most significant of the low `length` bits first.
    out.PushBack(static_cast<int>((value >> (length - 1 - i)) & 1u));
  }
  return out;
}

KeyPath KeyPath::Random(Rng* rng, size_t length) {
  PGRID_CHECK(rng != nullptr);
  KeyPath out;
  for (size_t i = 0; i < length; ++i) out.PushBack(rng->Bit());
  return out;
}

int KeyPath::bit(size_t i) const {
  PGRID_CHECK_LT(i, length_);
  return static_cast<int>((words()[i / kBitsPerWord] >> (i % kBitsPerWord)) & 1u);
}

void KeyPath::PushBack(int b) {
  PGRID_CHECK(b == 0 || b == 1);
  const size_t i = length_;
  if (heap_words_ == 0) {
    if (i == kBitsPerWord) {
      // Spill: the inline word is full; move it to a fresh two-word block.
      heap_ = new uint64_t[2]{inline_word_, 0};
      heap_words_ = 2;
    }
  } else if (i == size_t{heap_words_} * kBitsPerWord) {
    const size_t cap = size_t{heap_words_} * 2;
    uint64_t* grown = new uint64_t[cap]();
    std::copy(heap_, heap_ + heap_words_, grown);
    delete[] heap_;
    heap_ = grown;
    heap_words_ = static_cast<uint32_t>(cap);
  }
  // Words past the length are canonically zero, so setting a 1-bit is enough.
  if (b != 0) words()[i / kBitsPerWord] |= uint64_t{1} << (i % kBitsPerWord);
  ++length_;
}

void KeyPath::PopBack() {
  PGRID_CHECK_GT(length_, 0u);
  --length_;
  words()[length_ / kBitsPerWord] &= ~(uint64_t{1} << (length_ % kBitsPerWord));
  if (heap_words_ != 0 && length_ <= kBitsPerWord) {
    // Un-spill so short paths always report zero heap bytes.
    const uint64_t word0 = heap_[0];
    delete[] heap_;
    inline_word_ = word0;
    heap_words_ = 0;
  }
}

KeyPath KeyPath::Append(int b) const {
  KeyPath out = *this;
  out.PushBack(b);
  return out;
}

KeyPath KeyPath::Concat(const KeyPath& suffix) const {
  if (suffix.length_ == 0) return *this;
  // Word-packed append: each suffix word lands across at most two output words,
  // split at the current bit offset. Both operands are canonical (zero bits past
  // their lengths) and MakeZeroed zero-fills, so the result is canonical by
  // construction.
  KeyPath out = MakeZeroed(size_t{length_} + suffix.length_);
  const uint64_t* src = words();
  const uint64_t* suf = suffix.words();
  uint64_t* dst = out.words();
  std::copy(src, src + word_count(), dst);
  const size_t base = length_ / kBitsPerWord;
  const size_t offset = length_ % kBitsPerWord;
  const size_t out_n = out.word_count();
  for (size_t j = 0; j < suffix.word_count(); ++j) {
    const uint64_t v = suf[j];
    dst[base + j] |= v << offset;
    if (offset != 0 && base + j + 1 < out_n) {
      dst[base + j + 1] |= v >> (kBitsPerWord - offset);
    }
  }
  return out;
}

KeyPath KeyPath::Prefix(size_t len) const {
  PGRID_CHECK_LE(len, length_);
  KeyPath out = MakeZeroed(len);
  const uint64_t* src = words();
  uint64_t* dst = out.words();
  const size_t n = out.word_count();
  std::copy(src, src + n, dst);
  // Re-canonicalize: clear bits at positions >= len in the last word.
  if (len % kBitsPerWord != 0) {
    dst[n - 1] &= (uint64_t{1} << (len % kBitsPerWord)) - 1;
  }
  return out;
}

KeyPath KeyPath::Sub(size_t pos, size_t len) const {
  PGRID_CHECK_LE(pos + len, length_);
  if (len == 0) return KeyPath();
  // Word-packed extraction: output word w gathers the low part of source word
  // (first + w) and, when the cut is unaligned, the high part from the next word.
  // This runs on every routing hop (SuffixFrom), so it must not be per-bit.
  KeyPath out = MakeZeroed(len);
  const uint64_t* src = words();
  uint64_t* dst = out.words();
  const size_t first = pos / kBitsPerWord;
  const size_t shift = pos % kBitsPerWord;
  const size_t src_n = word_count();
  const size_t out_n = out.word_count();
  for (size_t w = 0; w < out_n; ++w) {
    uint64_t v = src[first + w] >> shift;
    if (shift != 0 && first + w + 1 < src_n) {
      v |= src[first + w + 1] << (kBitsPerWord - shift);
    }
    dst[w] = v;
  }
  // Re-canonicalize the tail word.
  if (len % kBitsPerWord != 0) {
    dst[out_n - 1] &= (uint64_t{1} << (len % kBitsPerWord)) - 1;
  }
  return out;
}

KeyPath KeyPath::SuffixFrom(size_t pos) const {
  if (pos >= length_) return KeyPath();
  return Sub(pos, length_ - pos);
}

size_t KeyPath::CommonPrefixLength(const KeyPath& other) const {
  const size_t limit = std::min(size_t{length_}, size_t{other.length_});
  const uint64_t* a = words();
  const uint64_t* b = other.words();
  const size_t n = WordsFor(limit);
  for (size_t w = 0; w < n; ++w) {
    uint64_t diff = a[w] ^ b[w];
    if (diff != 0) {
      size_t first_diff = w * kBitsPerWord + static_cast<size_t>(std::countr_zero(diff));
      return std::min(first_diff, limit);
    }
  }
  return limit;
}

bool KeyPath::IsPrefixOf(const KeyPath& other) const {
  return length_ <= other.length_ && CommonPrefixLength(other) == length_;
}

double KeyPath::Value() const {
  double v = 0.0;
  double w = 0.5;
  for (size_t i = 0; i < length_; ++i, w *= 0.5) {
    if (bit(i) != 0) v += w;
  }
  return v;
}

Interval KeyPath::ToInterval() const {
  double lo = Value();
  double width = 1.0;
  for (size_t i = 0; i < length_; ++i) width *= 0.5;
  return Interval{lo, lo + width};
}

std::string KeyPath::ToString() const {
  std::string out;
  out.reserve(length_);
  for (size_t i = 0; i < length_; ++i) out.push_back(bit(i) != 0 ? '1' : '0');
  return out;
}

std::strong_ordering KeyPath::operator<=>(const KeyPath& other) const {
  size_t common = CommonPrefixLength(other);
  if (common < length_ && common < other.length_) {
    return bit(common) < other.bit(common) ? std::strong_ordering::less
                                           : std::strong_ordering::greater;
  }
  return length_ <=> other.length_;
}

bool KeyPath::operator==(const KeyPath& other) const {
  if (length_ != other.length_) return false;
  const uint64_t* a = words();
  const uint64_t* b = other.words();
  return std::equal(a, a + word_count(), b);
}

size_t KeyPath::Hash() const {
  // FNV-1a over the canonical words plus the length. The word sequence is the
  // same for inline and heap representations of equal paths, so hash values are
  // representation-independent (and unchanged from the vector-backed layout).
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(length_);
  const uint64_t* w = words();
  for (size_t i = 0, n = word_count(); i < n; ++i) mix(w[i]);
  return static_cast<size_t>(h);
}

std::ostream& operator<<(std::ostream& os, const KeyPath& k) {
  return os << k.ToString();
}

}  // namespace pgrid
