#include "key/key_path.h"

#include <bit>

#include "util/macros.h"
#include "util/rng.h"

namespace pgrid {

namespace {

constexpr size_t kBitsPerWord = 64;

size_t WordsFor(size_t bits) { return (bits + kBitsPerWord - 1) / kBitsPerWord; }

}  // namespace

Result<KeyPath> KeyPath::FromString(std::string_view bits) {
  KeyPath out;
  for (char c : bits) {
    if (c == '0') {
      out.PushBack(0);
    } else if (c == '1') {
      out.PushBack(1);
    } else {
      return Status::InvalidArgument(std::string("invalid bit character '") + c +
                                     "' in key path");
    }
  }
  return out;
}

KeyPath KeyPath::FromUint64(uint64_t value, size_t length) {
  PGRID_CHECK_LE(length, kBitsPerWord);
  KeyPath out;
  for (size_t i = 0; i < length; ++i) {
    // Most significant of the low `length` bits first.
    out.PushBack(static_cast<int>((value >> (length - 1 - i)) & 1u));
  }
  return out;
}

KeyPath KeyPath::Random(Rng* rng, size_t length) {
  PGRID_CHECK(rng != nullptr);
  KeyPath out;
  for (size_t i = 0; i < length; ++i) out.PushBack(rng->Bit());
  return out;
}

int KeyPath::bit(size_t i) const {
  PGRID_CHECK_LT(i, length_);
  return static_cast<int>((words_[i / kBitsPerWord] >> (i % kBitsPerWord)) & 1u);
}

void KeyPath::PushBack(int b) {
  PGRID_CHECK(b == 0 || b == 1);
  if (length_ % kBitsPerWord == 0) words_.push_back(0);
  if (b != 0) words_[length_ / kBitsPerWord] |= uint64_t{1} << (length_ % kBitsPerWord);
  ++length_;
}

void KeyPath::PopBack() {
  PGRID_CHECK_GT(length_, 0u);
  --length_;
  words_[length_ / kBitsPerWord] &= ~(uint64_t{1} << (length_ % kBitsPerWord));
  words_.resize(WordsFor(length_));
}

KeyPath KeyPath::Append(int b) const {
  KeyPath out = *this;
  out.PushBack(b);
  return out;
}

KeyPath KeyPath::Concat(const KeyPath& suffix) const {
  KeyPath out = *this;
  if (suffix.length_ == 0) return out;
  // Word-packed append: each suffix word lands across at most two output words,
  // split at the current bit offset. Both operands are canonical (zero bits past
  // their lengths) and resize zero-fills, so the result is canonical by
  // construction.
  const size_t base = length_ / kBitsPerWord;
  const size_t offset = length_ % kBitsPerWord;
  out.length_ = length_ + suffix.length_;
  out.words_.resize(WordsFor(out.length_), 0);
  for (size_t j = 0; j < suffix.words_.size(); ++j) {
    const uint64_t v = suffix.words_[j];
    out.words_[base + j] |= v << offset;
    if (offset != 0 && base + j + 1 < out.words_.size()) {
      out.words_[base + j + 1] |= v >> (kBitsPerWord - offset);
    }
  }
  return out;
}

KeyPath KeyPath::Prefix(size_t len) const {
  PGRID_CHECK_LE(len, length_);
  KeyPath out = *this;
  out.length_ = len;
  out.words_.resize(WordsFor(len));
  // Re-canonicalize: clear bits at positions >= len in the last word.
  if (len % kBitsPerWord != 0 && !out.words_.empty()) {
    out.words_.back() &= (uint64_t{1} << (len % kBitsPerWord)) - 1;
  }
  return out;
}

KeyPath KeyPath::Sub(size_t pos, size_t len) const {
  PGRID_CHECK_LE(pos + len, length_);
  KeyPath out;
  if (len == 0) return out;
  // Word-packed extraction: output word w gathers the low part of source word
  // (first + w) and, when the cut is unaligned, the high part from the next word.
  // This runs on every routing hop (SuffixFrom), so it must not be per-bit.
  out.length_ = len;
  out.words_.resize(WordsFor(len), 0);
  const size_t first = pos / kBitsPerWord;
  const size_t shift = pos % kBitsPerWord;
  for (size_t w = 0; w < out.words_.size(); ++w) {
    uint64_t v = words_[first + w] >> shift;
    if (shift != 0 && first + w + 1 < words_.size()) {
      v |= words_[first + w + 1] << (kBitsPerWord - shift);
    }
    out.words_[w] = v;
  }
  // Re-canonicalize the tail word.
  if (len % kBitsPerWord != 0) {
    out.words_.back() &= (uint64_t{1} << (len % kBitsPerWord)) - 1;
  }
  return out;
}

KeyPath KeyPath::SuffixFrom(size_t pos) const {
  if (pos >= length_) return KeyPath();
  return Sub(pos, length_ - pos);
}

size_t KeyPath::CommonPrefixLength(const KeyPath& other) const {
  size_t limit = std::min(length_, other.length_);
  size_t words = WordsFor(limit);
  for (size_t w = 0; w < words; ++w) {
    uint64_t diff = words_[w] ^ other.words_[w];
    if (diff != 0) {
      size_t first_diff = w * kBitsPerWord + static_cast<size_t>(std::countr_zero(diff));
      return std::min(first_diff, limit);
    }
  }
  return limit;
}

bool KeyPath::IsPrefixOf(const KeyPath& other) const {
  return length_ <= other.length_ && CommonPrefixLength(other) == length_;
}

double KeyPath::Value() const {
  double v = 0.0;
  double w = 0.5;
  for (size_t i = 0; i < length_; ++i, w *= 0.5) {
    if (bit(i) != 0) v += w;
  }
  return v;
}

Interval KeyPath::ToInterval() const {
  double lo = Value();
  double width = 1.0;
  for (size_t i = 0; i < length_; ++i) width *= 0.5;
  return Interval{lo, lo + width};
}

std::string KeyPath::ToString() const {
  std::string out;
  out.reserve(length_);
  for (size_t i = 0; i < length_; ++i) out.push_back(bit(i) != 0 ? '1' : '0');
  return out;
}

std::strong_ordering KeyPath::operator<=>(const KeyPath& other) const {
  size_t common = CommonPrefixLength(other);
  if (common < length_ && common < other.length_) {
    return bit(common) < other.bit(common) ? std::strong_ordering::less
                                           : std::strong_ordering::greater;
  }
  return length_ <=> other.length_;
}

bool KeyPath::operator==(const KeyPath& other) const {
  return length_ == other.length_ && words_ == other.words_;
}

size_t KeyPath::Hash() const {
  // FNV-1a over the canonical words plus the length.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(length_);
  for (uint64_t w : words_) mix(w);
  return static_cast<size_t>(h);
}

std::ostream& operator<<(std::ostream& os, const KeyPath& k) {
  return os << k.ToString();
}

}  // namespace pgrid
