#include "key/text_key.h"

#include <array>
#include <cctype>

namespace pgrid {

namespace {

// Code order defines sort order; must itself be sorted by character value within
// the intended collation.
constexpr std::string_view kAlphabet = " -.0123456789_abcdefghijklmnopqrstuvwxyz";

std::array<int, 256> BuildCodeTable() {
  std::array<int, 256> table{};
  table.fill(-1);
  for (size_t i = 0; i < kAlphabet.size(); ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] = static_cast<int>(i);
  }
  return table;
}

const std::array<int, 256>& CodeTable() {
  static const std::array<int, 256> table = BuildCodeTable();
  return table;
}

}  // namespace

std::string_view TextKeyAlphabet() { return kAlphabet; }

Result<KeyPath> EncodeText(std::string_view text) {
  KeyPath out;
  for (char raw : text) {
    const char c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(raw)));
    const int code = CodeTable()[static_cast<unsigned char>(c)];
    if (code < 0) {
      return Status::InvalidArgument(std::string("character '") + raw +
                                     "' not in the text-key alphabet");
    }
    for (size_t bit = 0; bit < kTextKeyBitsPerChar; ++bit) {
      out.PushBack((code >> (kTextKeyBitsPerChar - 1 - bit)) & 1);
    }
  }
  return out;
}

Result<std::string> DecodeText(const KeyPath& key) {
  if (key.length() % kTextKeyBitsPerChar != 0) {
    return Status::InvalidArgument("key length " + std::to_string(key.length()) +
                                   " is not a multiple of " +
                                   std::to_string(kTextKeyBitsPerChar));
  }
  std::string out;
  out.reserve(key.length() / kTextKeyBitsPerChar);
  for (size_t pos = 0; pos < key.length(); pos += kTextKeyBitsPerChar) {
    int code = 0;
    for (size_t bit = 0; bit < kTextKeyBitsPerChar; ++bit) {
      code = (code << 1) | key.bit(pos + bit);
    }
    if (static_cast<size_t>(code) >= kAlphabet.size()) {
      return Status::InvalidArgument("code " + std::to_string(code) +
                                     " has no character");
    }
    out.push_back(kAlphabet[static_cast<size_t>(code)]);
  }
  return out;
}

}  // namespace pgrid
