#include "key/range.h"

namespace pgrid {

namespace {

uint64_t ToValue(const KeyPath& k) {
  uint64_t v = 0;
  for (size_t i = 0; i < k.length(); ++i) v = (v << 1) | static_cast<uint64_t>(k.bit(i));
  return v;
}

}  // namespace

Result<std::vector<KeyPath>> DecomposeRange(const KeyPath& lo, const KeyPath& hi) {
  const size_t length = lo.length();
  if (length != hi.length()) {
    return Status::InvalidArgument("range bounds must have equal length");
  }
  if (length == 0 || length > 63) {
    return Status::InvalidArgument("range key length must be in [1, 63]");
  }
  uint64_t lo_v = ToValue(lo);
  const uint64_t hi_v = ToValue(hi);
  if (lo_v > hi_v) {
    return Status::InvalidArgument("range is empty (lo > hi)");
  }

  std::vector<KeyPath> out;
  bool done = false;
  while (!done) {
    // Largest aligned block 2^k starting at lo_v that stays inside [lo_v, hi_v].
    size_t k = 0;
    while (k < length) {
      const uint64_t size = uint64_t{1} << (k + 1);
      if ((lo_v & (size - 1)) != 0) break;                 // not aligned
      if (lo_v + size - 1 > hi_v) break;                   // overshoots
      ++k;
    }
    out.push_back(KeyPath::FromUint64(lo_v >> k, length - k));
    const uint64_t block = uint64_t{1} << k;
    if (hi_v - lo_v < block) {
      done = true;  // the block ends exactly at hi_v (guaranteed by the k-search)
    } else {
      lo_v += block;
    }
  }
  return out;
}

}  // namespace pgrid
