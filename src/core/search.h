// The randomized depth-first search algorithm (paper Fig. 2) and the repeated-query
// reliable read built on top of it (Sec. 5.2).
//
// query(a, p, l) matches the remaining query path p against the suffix of a's path
// after the first l (already consumed) bits. If either side is exhausted, a is
// responsible for the query. Otherwise the request is forwarded through a's
// references at the divergence level, trying them in random order until one succeeds
// (depth-first backtracking). Offline peers are skipped; a reference whose subtree
// fails is abandoned and the next one is tried.
//
// Message accounting follows the paper: each successful remote invocation of query
// counts as one kQuery message; contacting an offline peer costs nothing.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/config.h"
#include "core/grid.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/online_model.h"
#include "util/result.h"
#include "util/rng.h"

namespace pgrid {

/// Outcome of one depth-first query.
struct QueryResult {
  /// True iff a responsible peer was reached.
  bool found = false;

  /// The responsible peer (valid iff found).
  PeerId responder = kInvalidPeer;

  /// Successful remote query invocations performed (the paper's message metric).
  uint64_t messages = 0;

  /// Hops rejected by an overloaded server (see set_shed_fn). Each shed hop is
  /// counted in `messages` too -- the request reached the server and cost wire
  /// traffic; it was degraded, not failed.
  uint64_t sheds = 0;

  /// Number of routing hops on the successful path (0 if the start peer answered).
  size_t hops = 0;
};

/// Outcome of a repeated-query (majority decision) read of one item's version.
struct ReliableReadResult {
  /// True iff some version reached the quorum within max_attempts.
  bool decided = false;

  /// The version agreed on (valid iff decided); falls back to the plurality value
  /// among collected answers when no quorum was reached but answers exist.
  uint64_t version = 0;

  /// True iff at least one query found a responsible peer.
  bool any_found = false;

  /// Total messages across all query attempts.
  uint64_t messages = 0;

  /// Number of queries issued.
  size_t attempts = 0;
};

/// Outcome of a prefix (interval) search: entries gathered from every reachable
/// peer whose path overlaps the prefix.
struct PrefixSearchResult {
  /// Distinct responsible peers visited.
  std::vector<PeerId> responders;

  /// Union of matching index entries across responders (deduplicated by
  /// (holder, item)).
  std::vector<IndexEntry> entries;

  /// Messages spent.
  uint64_t messages = 0;
};

/// Executes searches against a Grid.
class SearchEngine {
 public:
  /// `online` may be null (everyone online).
  SearchEngine(Grid* grid, const OnlineModel* online, Rng* rng);

  /// Issues query(start, key, 0). The start peer is assumed reachable (callers pick
  /// an online entry point; any peer can serve as one).
  QueryResult Query(PeerId start, const KeyPath& key);

  /// Repeated independent queries from random online start peers until `config.quorum`
  /// answers agree on one version of `item` (majority decision read, Sec. 5.2).
  ReliableReadResult ReadVersion(const KeyPath& key, ItemId item,
                                 const ReliableReadConfig& config);

  /// Prefix search (Sec. 6 trie extension): visits all reachable peers whose
  /// interval overlaps `prefix` -- breadth-first with per-level fan-out `fanout` --
  /// and gathers their matching index entries. A short prefix addresses a whole
  /// subtree; entries are deduplicated across replicas.
  PrefixSearchResult PrefixSearch(PeerId start, const KeyPath& prefix,
                                  size_t fanout = 2);

  /// Range search over the order-preserving key space: decomposes the inclusive
  /// range [lo, hi] (equal-length keys, see DecomposeRange) into aligned prefixes
  /// and runs a prefix search for each, merging the results. InvalidArgument for
  /// malformed bounds.
  Result<PrefixSearchResult> RangeSearch(PeerId start, const KeyPath& lo,
                                         const KeyPath& hi, size_t fanout = 2);

  /// Picks a uniformly random online peer to serve as query entry point, or nullopt
  /// if nobody is online (after sampling `tries` candidates).
  std::optional<PeerId> RandomOnlinePeer(size_t tries = 256);

  /// Redirects kQuery message accounting to `stats` instead of the grid's shared
  /// ledger. Parallel workloads point each per-thread engine at its own shard and
  /// MergeFrom the shards at the barrier (see core/parallel_workload.h), keeping
  /// the grid ledger single-writer. Null restores the grid's ledger.
  void set_stats_sink(MessageStats* stats) {
    stats_ = stats != nullptr ? stats : &grid_->stats();
  }

  /// Routing preference for gray peers: references for which `fn(from, to)` is
  /// true (demoted as slow, see repair::RepairEngine::IsDemoted) are tried
  /// only after every fast reference at the level has been exhausted. While no
  /// reference is demoted the draw sequence is exactly the historical one, so
  /// installing the callback does not perturb replayed scenario digests.
  void set_slow_fn(std::function<bool(PeerId from, PeerId to)> fn) {
    slow_fn_ = std::move(fn);
  }

  /// Per-peer overload shedding: before a hop recurses into server `r`,
  /// `fn(r)` may reject it (bounded in-flight serve queue). A shed hop costs a
  /// kQuery message like a served one but does not recurse and is not counted
  /// as served -- degraded, not failed; the query backtracks to other refs.
  void set_shed_fn(std::function<bool(PeerId server)> fn) {
    shed_fn_ = std::move(fn);
  }

 private:
  bool QueryImpl(PeerId peer, const KeyPath& p, size_t consumed, size_t hops,
                 QueryResult* out, obs::TraceSpan* span);

  void PrefixImpl(PeerId peer, const KeyPath& p, size_t consumed, size_t fanout,
                  std::vector<uint8_t>* visited, PrefixSearchResult* out,
                  obs::TraceSpan* span);

  Grid* grid_;
  const OnlineModel* online_;
  Rng* rng_;
  MessageStats* stats_;  // defaults to &grid_->stats(); see set_stats_sink
  std::function<bool(PeerId, PeerId)> slow_fn_;
  std::function<bool(PeerId)> shed_fn_;

  // Cached registry instruments (owned by the grid; see docs/observability.md).
  obs::Counter* queries_;
  obs::Counter* messages_;  // mirrors MessageStats kQuery exactly
  obs::Counter* backtracks_;
  obs::Counter* offline_skips_;
  obs::Counter* sheds_;
  obs::Counter* failures_;
  obs::Histogram* hops_;
};

}  // namespace pgrid
