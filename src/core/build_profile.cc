#include "core/build_profile.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace pgrid {
namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

/// Nearest-rank percentile of a sorted sample (0 on empty input).
uint64_t PercentileNs(const std::vector<uint64_t>& sorted, double pct) {
  if (sorted.empty()) return 0;
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  size_t idx = static_cast<size_t>(rank + 0.5);
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

void AppendWaveStructure(std::string* out, const WaveProfile& w) {
  out->append("{\"batch\": ");
  AppendU64(out, w.batch);
  out->append(", \"wave\": ");
  AppendU64(out, w.wave);
  out->append(", \"scheduled\": ");
  AppendU64(out, w.scheduled);
  out->append(", \"width\": ");
  AppendU64(out, w.width);
  out->append(", \"conflicts\": ");
  AppendU64(out, w.conflicts);
}

}  // namespace

uint64_t BuildProfile::SerialNs() const {
  uint64_t total = schedule_ns + merge_ns;
  for (const WaveProfile& w : waves) total += w.color_ns + w.merge_ns;
  return total;
}

uint64_t BuildProfile::RunNs() const {
  uint64_t total = 0;
  for (const WaveProfile& w : waves) total += w.run_ns;
  return total;
}

uint64_t BuildProfile::BusyNs() const {
  uint64_t total = 0;
  for (const WaveProfile& w : waves) {
    for (uint64_t b : w.lane_busy_ns) total += b;
  }
  return total;
}

double BuildProfile::SerialFraction() const {
  if (total_ns == 0) return 0.0;
  return static_cast<double>(SerialNs()) / static_cast<double>(total_ns);
}

double BuildProfile::Utilization() const {
  const uint64_t run = RunNs();
  if (run == 0 || threads == 0) return 0.0;
  return static_cast<double>(BusyNs()) /
         (static_cast<double>(threads) * static_cast<double>(run));
}

double BuildProfile::ClaimConflictRate() const {
  uint64_t scheduled = 0;
  uint64_t conflicts = 0;
  for (const WaveProfile& w : waves) {
    scheduled += w.scheduled;
    conflicts += w.conflicts;
  }
  if (scheduled == 0) return 0.0;
  return static_cast<double>(conflicts) / static_cast<double>(scheduled);
}

std::vector<uint64_t> BuildProfile::BarrierWaitSamplesNs() const {
  std::vector<uint64_t> samples;
  samples.reserve(waves.size() * threads);
  for (const WaveProfile& w : waves) {
    for (uint64_t busy : w.lane_busy_ns) {
      samples.push_back(w.run_ns > busy ? w.run_ns - busy : 0);
    }
  }
  return samples;
}

std::string BuildProfile::ToJson() const {
  std::vector<uint64_t> waits = BarrierWaitSamplesNs();
  std::sort(waits.begin(), waits.end());

  std::string out = "{\"threads\": ";
  AppendU64(&out, threads);
  out.append(", \"waves\": ");
  AppendU64(&out, waves.size());
  out.append(", \"total_ns\": ");
  AppendU64(&out, total_ns);
  out.append(", \"schedule_ns\": ");
  AppendU64(&out, schedule_ns);
  out.append(", \"merge_ns\": ");
  AppendU64(&out, merge_ns);
  out.append(", \"serial_ns\": ");
  AppendU64(&out, SerialNs());
  out.append(", \"run_ns\": ");
  AppendU64(&out, RunNs());
  out.append(", \"busy_ns\": ");
  AppendU64(&out, BusyNs());
  out.append(", \"serial_fraction\": ");
  AppendDouble(&out, SerialFraction());
  out.append(", \"utilization\": ");
  AppendDouble(&out, Utilization());
  out.append(", \"claim_conflict_rate\": ");
  AppendDouble(&out, ClaimConflictRate());
  out.append(", \"barrier_wait_ns\": {\"samples\": ");
  AppendU64(&out, waits.size());
  out.append(", \"p50\": ");
  AppendU64(&out, PercentileNs(waits, 50.0));
  out.append(", \"p95\": ");
  AppendU64(&out, PercentileNs(waits, 95.0));
  out.append(", \"p99\": ");
  AppendU64(&out, PercentileNs(waits, 99.0));
  out.append("}, \"profiler_dropped\": ");
  AppendU64(&out, profiler_dropped);
  out.append(", \"waves_detail\": [");
  for (size_t i = 0; i < waves.size(); ++i) {
    const WaveProfile& w = waves[i];
    if (i > 0) out.append(", ");
    AppendWaveStructure(&out, w);
    out.append(", \"color_ns\": ");
    AppendU64(&out, w.color_ns);
    out.append(", \"run_ns\": ");
    AppendU64(&out, w.run_ns);
    out.append(", \"merge_ns\": ");
    AppendU64(&out, w.merge_ns);
    out.append(", \"lane_busy_ns\": [");
    for (size_t l = 0; l < w.lane_busy_ns.size(); ++l) {
      if (l > 0) out.append(", ");
      AppendU64(&out, w.lane_busy_ns[l]);
    }
    out.append("]}");
  }
  out.append("]}");
  return out;
}

std::string BuildProfile::StructureJson() const {
  std::string out = "{\"waves\": [";
  for (size_t i = 0; i < waves.size(); ++i) {
    if (i > 0) out.append(", ");
    AppendWaveStructure(&out, waves[i]);
    out.append("}");
  }
  out.append("]}");
  return out;
}

std::string BuildProfile::ToCollapsedStacks() const {
  // Fold the same accounting as ToJson into flamegraph stacks. Per-lane busy
  // and barrier-wait are summed over waves so lane imbalance shows up as
  // differing frame widths.
  uint64_t color = 0;
  uint64_t gather = 0;
  for (const WaveProfile& w : waves) {
    color += w.color_ns;
    gather += w.merge_ns;
  }
  std::vector<uint64_t> busy(threads, 0);
  std::vector<uint64_t> wait(threads, 0);
  for (const WaveProfile& w : waves) {
    for (size_t l = 0; l < w.lane_busy_ns.size() && l < threads; ++l) {
      busy[l] += w.lane_busy_ns[l];
      wait[l] += w.run_ns > w.lane_busy_ns[l] ? w.run_ns - w.lane_busy_ns[l] : 0;
    }
  }
  std::string out;
  auto line = [&out](const std::string& stack, uint64_t v) {
    out.append(stack);
    out.push_back(' ');
    AppendU64(&out, v);
    out.push_back('\n');
  };
  line("build;serial;schedule", schedule_ns);
  line("build;serial;wave_color", color);
  line("build;serial;wave_merge", gather);
  line("build;serial;batch_merge", merge_ns);
  for (size_t l = 0; l < threads; ++l) {
    const std::string lane = "lane" + std::to_string(l);
    line("build;wave_run;" + lane + ";busy", busy[l]);
    line("build;wave_run;" + lane + ";barrier_wait", wait[l]);
  }
  return out;
}

}  // namespace pgrid
