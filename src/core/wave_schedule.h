// Conflict-free wave scheduling via deterministic edge coloring.
//
// The parallel builder (core/parallel_builder.h) executes a batch of meetings
// concurrently, but two meetings that share a peer mutate the same PeerState
// and therefore must not run in the same wave. PR 3 solved this with a greedy
// per-wave claim loop: every wave re-scanned the remaining items and admitted
// those whose endpoints were still unclaimed. That discovers a legal partition,
// but badly: at realistic batch sizes ~68% of scan visits hit an already
// claimed endpoint (the profiler's claim-conflict rate), the tail waves shrink
// to a handful of items (pure barrier overhead), and the scan itself is serial
// work repeated once per wave.
//
// This module replaces discovery with computation. A batch of meetings is a
// multigraph over peers -- meetings are edges, peers are vertices -- and a
// partition into conflict-free waves is exactly a proper *edge coloring*: no
// two edges of one color share a vertex, so each color class is a wave the
// thread pool can execute with zero claim traffic. The coloring runs serially,
// once per round, and is a pure function of the item list (no RNG, no
// dependence on thread count or timing), so the wave structure -- and with it
// the item -> slot assignment that drives the deterministic per-slot RNG
// streams -- is part of the schedule, never of the execution.
//
// Algorithm: Misra & Gries (1992), the constructive form of Vizing's theorem.
// Edges are processed in input order; each uncolored edge (u, v) builds a
// maximal fan of u, inverts one cd-alternating path, rotates the fan, and
// colors the edge -- all with colors from a palette of max_degree() + 1. For
// *simple* batches (no repeated pair) this yields the Vizing bound:
//
//     waves() <= max_degree() + 1
//
// which is within one of the trivial lower bound max_degree(). Batches may
// contain parallel edges (the same pair drawn twice); Vizing's bound for
// multigraphs is max_degree + max_multiplicity, and the fan argument can fail
// on such edges, in which case the edge falls back to the smallest color free
// at both endpoints, growing the palette when none exists (counted in
// fallback_colors()). tests/wave_schedule_test.cc pins the simple-batch bound,
// the multigraph behavior, validity, completeness, and determinism.
//
// Scratch state (per-peer stamps, palettes) is retained across Color() calls
// so a builder can reschedule every round without reallocating; none of it
// leaks into the result.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace pgrid {

/// One schedulable meeting: an edge of the batch multigraph. Only the
/// endpoints matter for scheduling; execution payload (recursion depth etc.)
/// stays with the caller, keyed by item index.
struct WaveEdge {
  PeerId a = 0;
  PeerId b = 0;
};

/// A conflict-free wave partition of one batch of meetings.
class WaveSchedule {
 public:
  WaveSchedule() = default;

  WaveSchedule(const WaveSchedule&) = delete;
  WaveSchedule& operator=(const WaveSchedule&) = delete;

  /// Edge-colors `edges` and replaces the previous schedule. Deterministic: the
  /// waves are a pure function of the edge list (order included). Self-loops
  /// (a == b) are rejected by PGRID_CHECK; the exchange algorithm never
  /// produces them.
  void Color(const std::vector<WaveEdge>& edges);

  /// Number of waves (color classes with at least one edge).
  size_t num_waves() const { return waves_.size(); }

  /// Item indices of wave `w`, ascending (== input order within the wave).
  const std::vector<uint32_t>& wave(size_t w) const { return waves_[w]; }

  /// Total edges scheduled (sum of wave widths; every input edge exactly once).
  size_t num_edges() const { return num_edges_; }

  /// Maximum vertex degree of the batch multigraph, counting multiplicity.
  /// For simple batches num_waves() <= max_degree() + 1 (Vizing).
  size_t max_degree() const { return max_degree_; }

  /// Colors introduced beyond the max_degree() + 1 palette because a parallel
  /// edge defeated the fan argument. 0 for every simple batch.
  size_t fallback_colors() const { return fallback_colors_; }

 private:
  static constexpr uint32_t kNone = 0xffffffffu;

  /// Dense vertex id of `peer`, assigning one on first sight this round.
  uint32_t DenseId(PeerId peer);

  /// Smallest color in [0, palette_) with no edge at vertex `v`.
  uint32_t FreeColor(uint32_t v) const;

  /// Colors edge `e`: Misra-Gries first, greedy fallback for parallel edges.
  void ColorEdge(uint32_t e);

  /// The fan / cd-path procedure. Returns false when a parallel edge defeats
  /// the fan argument (never for a simple batch); the edge stays uncolored.
  bool TryMisraGries(uint32_t e);

  /// Inverts the maximal path from `u` whose edges alternate colors d, c, ...
  void InvertPath(uint32_t u, uint32_t c, uint32_t d);

  /// Rotates the fan prefix [0, j]: edge (u, fan_[i]) takes the color of edge
  /// (u, fan_[i+1]) for i < j, and edge (u, fan_[j]) takes `d`.
  void RotateAndColor(size_t j, uint32_t d);

  /// Edge colored `c` at vertex `v`, or kNone.
  uint32_t EdgeAt(uint32_t v, uint32_t c) const {
    return at_[static_cast<size_t>(v) * palette_cap_ + c];
  }
  void SetEdgeAt(uint32_t v, uint32_t c, uint32_t e) {
    at_[static_cast<size_t>(v) * palette_cap_ + c] = e;
  }

  /// Recolors edge `e` (currently `from` or uncolored) to `to`, updating both
  /// endpoint tables.
  void Assign(uint32_t e, uint32_t to);

  /// Grows the palette to `colors`, rebuilding the per-vertex tables.
  void GrowPalette(uint32_t colors);

  // Round-scoped working state. Vertices are dense ids 0..num_vertices_-1.
  std::vector<uint32_t> dense_;       // PeerId -> dense id (stamped)
  std::vector<uint32_t> stamp_;       // PeerId -> round stamp
  uint32_t round_ = 0;
  uint32_t num_vertices_ = 0;

  std::vector<uint32_t> edge_u_, edge_v_;  // dense endpoints per edge
  std::vector<uint32_t> color_;            // edge -> color (kNone = uncolored)
  std::vector<uint32_t> at_;               // vertex x color -> edge (strided)
  uint32_t palette_ = 0;                   // colors currently permitted
  uint32_t palette_cap_ = 0;               // stride of at_

  // Fan/path scratch.
  std::vector<uint32_t> degree_;        // dense vertex -> degree this round
  std::vector<uint32_t> fan_;           // fan vertices (fan_[0] = v)
  std::vector<uint32_t> fan_edge_;      // edge joining fan_[i] (fan_edge_[0] = e)
  std::vector<uint32_t> path_;          // cd-path edges, in walk order
  std::vector<uint32_t> rotate_colors_; // shifted colors during rotation
  std::vector<uint32_t> in_fan_stamp_;
  uint32_t fan_round_ = 0;

  std::vector<std::vector<uint32_t>> waves_;
  size_t num_edges_ = 0;
  size_t max_degree_ = 0;
  size_t fallback_colors_ = 0;
};

}  // namespace pgrid
