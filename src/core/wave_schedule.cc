#include "core/wave_schedule.h"

#include <algorithm>

#include "util/macros.h"

namespace pgrid {

uint32_t WaveSchedule::DenseId(PeerId peer) {
  if (peer >= dense_.size()) {
    dense_.resize(peer + 1, 0);
    stamp_.resize(peer + 1, 0);
  }
  if (stamp_[peer] != round_) {
    stamp_[peer] = round_;
    dense_[peer] = num_vertices_++;
  }
  return dense_[peer];
}

uint32_t WaveSchedule::FreeColor(uint32_t v) const {
  for (uint32_t c = 0; c < palette_; ++c) {
    if (EdgeAt(v, c) == kNone) return c;
  }
  return kNone;
}

void WaveSchedule::Assign(uint32_t e, uint32_t to) {
  const uint32_t from = color_[e];
  if (from != kNone) {
    SetEdgeAt(edge_u_[e], from, kNone);
    SetEdgeAt(edge_v_[e], from, kNone);
  }
  color_[e] = to;
  if (to != kNone) {
    PGRID_DCHECK(EdgeAt(edge_u_[e], to) == kNone);
    PGRID_DCHECK(EdgeAt(edge_v_[e], to) == kNone);
    SetEdgeAt(edge_u_[e], to, e);
    SetEdgeAt(edge_v_[e], to, e);
  }
}

void WaveSchedule::GrowPalette(uint32_t colors) {
  if (colors <= palette_cap_) {
    palette_ = colors;
    return;
  }
  const uint32_t cap = std::max(colors, palette_cap_ * 2);
  std::vector<uint32_t> grown(static_cast<size_t>(num_vertices_) * cap, kNone);
  for (uint32_t v = 0; v < num_vertices_; ++v) {
    std::copy(at_.begin() + static_cast<size_t>(v) * palette_cap_,
              at_.begin() + static_cast<size_t>(v) * palette_cap_ + palette_,
              grown.begin() + static_cast<size_t>(v) * cap);
  }
  at_ = std::move(grown);
  palette_cap_ = cap;
  palette_ = colors;
}

void WaveSchedule::InvertPath(uint32_t u, uint32_t c, uint32_t d) {
  // The maximal path from u alternating d, c, d, ... is simple: a proper
  // coloring gives every vertex at most one edge of each color, and only the
  // start vertex u lacks the "arrived on the other color" edge.
  path_.clear();
  uint32_t x = u;
  uint32_t col = d;
  for (;;) {
    const uint32_t pe = EdgeAt(x, col);
    if (pe == kNone) break;
    path_.push_back(pe);
    x = edge_u_[pe] == x ? edge_v_[pe] : edge_u_[pe];
    col = col == d ? c : d;
  }
  // Uncolor everything first so the at_ tables never hold two edges per slot
  // mid-swap; then re-add with c and d exchanged.
  for (const uint32_t pe : path_) Assign(pe, kNone);
  for (size_t i = 0; i < path_.size(); ++i) {
    Assign(path_[i], i % 2 == 0 ? c : d);
  }
}

void WaveSchedule::RotateAndColor(size_t j, uint32_t d) {
  rotate_colors_.resize(j + 1);
  for (size_t i = 0; i < j; ++i) rotate_colors_[i] = color_[fan_edge_[i + 1]];
  rotate_colors_[j] = d;
  // fan_edge_[0] is the edge being colored and is already uncolored.
  for (size_t i = 1; i <= j; ++i) Assign(fan_edge_[i], kNone);
  for (size_t i = 0; i <= j; ++i) Assign(fan_edge_[i], rotate_colors_[i]);
}

bool WaveSchedule::TryMisraGries(uint32_t e) {
  const uint32_t u = edge_u_[e];
  const uint32_t v = edge_v_[e];

  // Maximal fan of u: fan_[0] = v; fan_[i] (i >= 1) joins through a colored
  // edge (u, fan_[i]) whose color is free at fan_[i-1]; vertices are distinct.
  // Candidate colors are scanned ascending, so the fan -- like everything else
  // here -- is a deterministic function of the current coloring.
  ++fan_round_;
  if (fan_round_ == 0) {
    std::fill(in_fan_stamp_.begin(), in_fan_stamp_.end(), 0);
    fan_round_ = 1;
  }
  if (in_fan_stamp_.size() < num_vertices_) {
    in_fan_stamp_.resize(num_vertices_, 0);
  }
  fan_.clear();
  fan_edge_.clear();
  fan_.push_back(v);
  fan_edge_.push_back(e);
  in_fan_stamp_[v] = fan_round_;
  in_fan_stamp_[u] = fan_round_;
  for (;;) {
    const uint32_t tail = fan_.back();
    bool extended = false;
    for (uint32_t c = 0; c < palette_; ++c) {
      if (EdgeAt(tail, c) != kNone) continue;  // c not free at the fan tail
      const uint32_t cand = EdgeAt(u, c);
      if (cand == kNone) continue;  // no colored edge at u to shift down
      const uint32_t w = edge_u_[cand] == u ? edge_v_[cand] : edge_u_[cand];
      if (in_fan_stamp_[w] == fan_round_) continue;
      fan_.push_back(w);
      fan_edge_.push_back(cand);
      in_fan_stamp_[w] = fan_round_;
      extended = true;
      break;
    }
    if (!extended) break;
  }

  const uint32_t c = FreeColor(u);
  const uint32_t d = FreeColor(fan_.back());
  // Both exist unconditionally: any vertex touches at most max_degree_ colored
  // edges and the palette holds at least max_degree_ + 1 colors.
  PGRID_CHECK(c != kNone && d != kNone);

  if (EdgeAt(u, d) == kNone) {  // covers c == d
    RotateAndColor(fan_.size() - 1, d);
    return true;
  }

  InvertPath(u, c, d);
  // d is now free at u (its d-edge was the path head, recolored c). Take the
  // first fan vertex with d free inside the longest prefix that is still a
  // valid fan under the inverted coloring; Vizing/Misra-Gries guarantees one
  // exists for simple graphs.
  for (size_t j = 0; j < fan_.size(); ++j) {
    if (j > 0) {
      const uint32_t ce = color_[fan_edge_[j]];
      if (ce == kNone || EdgeAt(fan_[j - 1], ce) != kNone) break;
    }
    if (EdgeAt(fan_[j], d) == kNone) {
      RotateAndColor(j, d);
      return true;
    }
  }
  return false;
}

void WaveSchedule::ColorEdge(uint32_t e) {
  if (TryMisraGries(e)) return;
  // Parallel-edge fallback: the smallest color free at both endpoints, growing
  // the palette beyond max_degree + 1 when the Vizing palette has none (the
  // multigraph bound is max_degree + max_multiplicity).
  const uint32_t u = edge_u_[e];
  const uint32_t v = edge_v_[e];
  for (uint32_t c = 0;; ++c) {
    if (c >= palette_) {
      GrowPalette(c + 1);
      ++fallback_colors_;
    }
    if (EdgeAt(u, c) == kNone && EdgeAt(v, c) == kNone) {
      Assign(e, c);
      return;
    }
  }
}

void WaveSchedule::Color(const std::vector<WaveEdge>& edges) {
  waves_.clear();
  num_edges_ = edges.size();
  max_degree_ = 0;
  fallback_colors_ = 0;
  if (edges.empty()) return;

  ++round_;
  if (round_ == 0) {  // stamp wraparound: invalidate every cached dense id
    std::fill(stamp_.begin(), stamp_.end(), 0);
    round_ = 1;
  }
  num_vertices_ = 0;
  const uint32_t n = static_cast<uint32_t>(edges.size());
  edge_u_.resize(n);
  edge_v_.resize(n);
  color_.assign(n, kNone);
  for (uint32_t e = 0; e < n; ++e) {
    PGRID_CHECK(edges[e].a != edges[e].b);
    edge_u_[e] = DenseId(edges[e].a);
    edge_v_[e] = DenseId(edges[e].b);
  }

  degree_.assign(num_vertices_, 0);
  for (uint32_t e = 0; e < n; ++e) {
    ++degree_[edge_u_[e]];
    ++degree_[edge_v_[e]];
  }
  max_degree_ = *std::max_element(degree_.begin(), degree_.end());

  palette_ = static_cast<uint32_t>(max_degree_) + 1;
  if (palette_ > palette_cap_) palette_cap_ = palette_;
  at_.assign(static_cast<size_t>(num_vertices_) * palette_cap_, kNone);

  for (uint32_t e = 0; e < n; ++e) ColorEdge(e);

  // Waves are the nonempty color classes, ascending by color; items inside a
  // wave keep their input order. Both orders are part of the deterministic
  // contract (slot assignment follows wave position).
  std::vector<uint32_t> wave_of(palette_, kNone);
  for (uint32_t e = 0; e < n; ++e) wave_of[color_[e]] = 0;
  for (uint32_t c = 0; c < palette_; ++c) {
    if (wave_of[c] == kNone) continue;
    wave_of[c] = static_cast<uint32_t>(waves_.size());
    waves_.emplace_back();
  }
  for (uint32_t e = 0; e < n; ++e) {
    waves_[wave_of[color_[e]]].push_back(e);
  }
}

}  // namespace pgrid
