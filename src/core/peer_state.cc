#include "core/peer_state.h"

#include <algorithm>

#include "util/macros.h"

namespace pgrid {

int PeerState::PathBit(size_t level) const {
  PGRID_CHECK(level >= 1 && level <= depth());
  return path_.bit(level - 1);
}

const std::vector<PeerId>& PeerState::RefsAt(size_t level) const {
  PGRID_CHECK(level >= 1 && level <= refs_.size());
  return refs_[level - 1];
}

std::vector<PeerId>& PeerState::MutableRefsAt(size_t level) {
  PGRID_CHECK(level >= 1 && level <= refs_.size());
  return refs_[level - 1];
}

void PeerState::SetRefsAt(size_t level, std::vector<PeerId> refs) {
  PGRID_CHECK(level >= 1 && level <= refs_.size());
  refs_[level - 1] = std::move(refs);
}

bool PeerState::AddRefAt(size_t level, PeerId peer) {
  std::vector<PeerId>& r = MutableRefsAt(level);
  if (std::find(r.begin(), r.end(), peer) != r.end()) return false;
  r.push_back(peer);
  return true;
}

void PeerState::AppendPathBit(int bit) {
  path_.PushBack(bit);
  refs_.emplace_back();
}

bool PeerState::AddBuddy(PeerId peer) {
  if (peer == id_) return false;
  if (std::find(buddies_.begin(), buddies_.end(), peer) != buddies_.end()) return false;
  buddies_.push_back(peer);
  return true;
}

size_t PeerState::TotalRefs() const {
  size_t n = 0;
  for (const auto& r : refs_) n += r.size();
  return n;
}

size_t PeerState::ApproxMemoryBytes() const {
  size_t bytes = path_.ApproxMemoryBytes();
  bytes += refs_.capacity() * sizeof(std::vector<PeerId>);
  for (const auto& r : refs_) bytes += r.capacity() * sizeof(PeerId);
  bytes += buddies_.capacity() * sizeof(PeerId);
  bytes += index_.ApproxMemoryBytes();
  bytes += store_.ApproxMemoryBytes();
  bytes += foreign_.capacity() * sizeof(IndexEntry);
  for (const auto& e : foreign_) bytes += e.key.ApproxMemoryBytes();
  return bytes;
}

}  // namespace pgrid
