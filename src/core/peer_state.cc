#include "core/peer_state.h"

#include "util/macros.h"

namespace pgrid {

int PeerState::PathBit(size_t level) const {
  PGRID_CHECK(level >= 1 && level <= depth());
  return path_.bit(level - 1);
}

Span<PeerId> PeerState::RefsAt(size_t level) const {
  PGRID_CHECK(level >= 1 && level <= refs_.depth());
  return refs_.At(level - 1);
}

void PeerState::SetRefsAt(size_t level, std::vector<PeerId> refs) {
  PGRID_CHECK(level >= 1 && level <= refs_.depth());
  refs_.Set(level - 1, refs.data(), refs.size());
}

bool PeerState::AddRefAt(size_t level, PeerId peer) {
  PGRID_CHECK(level >= 1 && level <= refs_.depth());
  return refs_.Add(level - 1, peer);
}

size_t PeerState::RemoveRefAt(size_t level, PeerId peer) {
  PGRID_CHECK(level >= 1 && level <= refs_.depth());
  return refs_.Remove(level - 1, peer);
}

void PeerState::AppendPathBit(int bit) {
  path_.PushBack(bit);
  refs_.AppendLevel();
}

bool PeerState::AddBuddy(PeerId peer, size_t max_buddies) {
  if (peer == id_) return false;
  for (PeerId b : buddies_) {
    if (b == peer) return false;
  }
  if (max_buddies > 0 && buddies_.size() >= max_buddies) return false;
  buddies_.push_back(peer);
  return true;
}

size_t PeerState::ApproxMemoryBytes() const {
  size_t bytes = path_.ApproxMemoryBytes();
  bytes += refs_.ApproxMemoryBytes();
  bytes += buddies_.ApproxMemoryBytes();
  bytes += index_.ApproxMemoryBytes();
  bytes += store_.ApproxMemoryBytes();
  bytes += foreign_.ApproxMemoryBytes();
  for (const IndexEntry& e : foreign_) bytes += e.key.ApproxMemoryBytes();
  return bytes;
}

}  // namespace pgrid
