#include "core/search.h"

#include <map>
#include <unordered_set>

#include "key/range.h"
#include "util/macros.h"

namespace pgrid {

SearchEngine::SearchEngine(Grid* grid, const OnlineModel* online, Rng* rng)
    : grid_(grid), online_(online), rng_(rng), stats_(&grid->stats()) {
  PGRID_CHECK(grid != nullptr && rng != nullptr);
  obs::MetricsRegistry& m = grid->metrics();
  queries_ = m.GetCounter("search.queries");
  messages_ = m.GetCounter("search.messages");
  backtracks_ = m.GetCounter("search.backtracks");
  offline_skips_ = m.GetCounter("search.offline_skips");
  sheds_ = m.GetCounter("search.sheds");
  failures_ = m.GetCounter("search.failures");
  hops_ = m.GetHistogram("search.hops", obs::CountBounds());
  PGRID_CHECK(queries_ && messages_ && backtracks_ && offline_skips_ && sheds_ &&
              failures_ && hops_);
}

QueryResult SearchEngine::Query(PeerId start, const KeyPath& key) {
  QueryResult out;
  queries_->Increment();
  obs::TraceSpan span(grid_->trace(), "search.query");
  out.found = QueryImpl(start, key, /*consumed=*/0, /*hops=*/0, &out, &span);
  if (out.found) {
    hops_->Record(out.hops);
  } else {
    failures_->Increment();
  }
  return out;
}

bool SearchEngine::QueryImpl(PeerId peer, const KeyPath& p, size_t consumed,
                             size_t hops, QueryResult* out, obs::TraceSpan* span) {
  const bool tracing = grid_->trace() != nullptr;
  const PeerState& a = grid_->peer(peer);
  const KeyPath rempath = a.path().SuffixFrom(consumed);
  const size_t lc = p.CommonPrefixLength(rempath);

  if (lc == p.length() || lc == rempath.length()) {
    // Either the query is exhausted (the peer's interval is inside the query's) or
    // the peer's path is exhausted (the query's interval is inside the peer's):
    // `a` is responsible.
    out->responder = peer;
    out->hops = hops;
    return true;
  }

  // Divergence at position lc of the remainder, i.e. global level consumed + lc + 1.
  // Paths only grow, so the guard from Fig. 2 always holds here; keep it as a check.
  PGRID_DCHECK(a.depth() > consumed + lc);
  const KeyPath querypath = p.SuffixFrom(lc);
  std::vector<PeerId> refs = a.RefsAt(consumed + lc + 1);  // copy: we draw and remove
  std::vector<PeerId> deferred;  // demoted (gray) refs: tried after the fast ones
  if (slow_fn_) {
    // Stable partition so that with no demotions the draw sequence over `refs`
    // is byte-identical to the historical one.
    std::vector<PeerId> fast;
    fast.reserve(refs.size());
    for (PeerId r : refs) {
      (slow_fn_(peer, r) ? deferred : fast).push_back(r);
    }
    refs = std::move(fast);
  }
  while (!refs.empty() || !deferred.empty()) {
    PeerId r = !refs.empty() ? rng_->TakeRandom(&refs) : rng_->TakeRandom(&deferred);
    if (online_ != nullptr && !online_->IsOnline(r, rng_)) {
      offline_skips_->Increment();
      if (tracing) {
        span->Event("search.offline_skip", "peer=" + std::to_string(r),
                    static_cast<uint32_t>(hops));
      }
      continue;
    }
    if (shed_fn_ && shed_fn_(r)) {
      // The request reached r but its serve queue is full: one kQuery spent on
      // the wire (the ledger sees it like any hop), nothing served, no
      // recursion. The query degrades to the remaining references.
      stats_->Record(MessageType::kQuery);
      messages_->Increment();
      ++out->messages;
      sheds_->Increment();
      ++out->sheds;
      if (tracing) {
        span->Event("search.shed", "peer=" + std::to_string(r),
                    static_cast<uint32_t>(hops));
      }
      continue;
    }
    stats_->Record(MessageType::kQuery);
    messages_->Increment();
    grid_->NoteServed(r);
    ++out->messages;
    if (tracing) {
      span->Event("search.hop",
                  "peer=" + std::to_string(r) +
                      " level=" + std::to_string(consumed + lc + 1),
                  static_cast<uint32_t>(hops + 1));
    }
    if (QueryImpl(r, querypath, consumed + lc, hops + 1, out, span)) return true;
    backtracks_->Increment();
    if (tracing) {
      span->Event("search.backtrack", "peer=" + std::to_string(r),
                  static_cast<uint32_t>(hops + 1));
    }
  }
  return false;
}

PrefixSearchResult SearchEngine::PrefixSearch(PeerId start, const KeyPath& prefix,
                                              size_t fanout) {
  PGRID_CHECK_GT(fanout, 0u);
  PrefixSearchResult out;
  std::vector<uint8_t> visited(grid_->size(), 0);
  obs::TraceSpan span(grid_->trace(), "search.prefix");
  PrefixImpl(start, prefix, /*consumed=*/0, fanout, &visited, &out, &span);
  // Deduplicate entries gathered from multiple replicas.
  std::unordered_set<uint64_t> seen;
  std::vector<IndexEntry> unique;
  unique.reserve(out.entries.size());
  for (IndexEntry& e : out.entries) {
    const uint64_t key = (static_cast<uint64_t>(e.holder) << 32) ^
                         (e.item_id * 0x9e3779b97f4a7c15ull);
    if (seen.insert(key).second) unique.push_back(std::move(e));
  }
  out.entries = std::move(unique);
  return out;
}

void SearchEngine::PrefixImpl(PeerId peer, const KeyPath& p, size_t consumed,
                              size_t fanout, std::vector<uint8_t>* visited,
                              PrefixSearchResult* out, obs::TraceSpan* span) {
  if ((*visited)[peer]) return;
  (*visited)[peer] = 1;
  const PeerState& a = grid_->peer(peer);
  const KeyPath rempath = a.path().SuffixFrom(consumed);
  const size_t lc = p.CommonPrefixLength(rempath);

  auto fan = [&](Span<PeerId> refs, const KeyPath& next,
                 size_t consumed_next) {
    std::vector<PeerId> candidates = refs.ToVector();  // copy: draw and remove
    size_t contacted = 0;
    while (!candidates.empty() && contacted < fanout) {
      PeerId r = rng_->TakeRandom(&candidates);
      if (online_ != nullptr && !online_->IsOnline(r, rng_)) {
        offline_skips_->Increment();
        continue;
      }
      stats_->Record(MessageType::kQuery);
      messages_->Increment();
      grid_->NoteServed(r);
      ++out->messages;
      ++contacted;
      if (grid_->trace() != nullptr) {
        span->Event("search.hop", "peer=" + std::to_string(r),
                    static_cast<uint32_t>(consumed_next));
      }
      PrefixImpl(r, next, consumed_next, fanout, visited, out, span);
    }
  };

  if (lc == p.length() || lc == rempath.length()) {
    // The peer's interval intersects the prefix region: gather its matching
    // entries. Reconstruct the full prefix from the routing invariant.
    out->responders.push_back(peer);
    const KeyPath full =
        a.path().Prefix(std::min<size_t>(consumed, a.depth())).Concat(p);
    a.index().ForEach([&full, out](const IndexEntry& e) {
      if (PathsOverlap(e.key, full)) out->entries.push_back(e);
    });
    if (lc == p.length()) {
      // Prefix exhausted but the peer's path continues: references at every
      // deeper level cover the sibling sub-intervals of the prefix region.
      // consumed = level ensures strictly deeper exploration (termination).
      const KeyPath empty;
      for (size_t level = consumed + lc + 1; level <= a.depth(); ++level) {
        fan(a.RefsAt(level), empty, level);
      }
    }
    return;
  }
  // Divergence before either side is exhausted: ordinary routing step.
  fan(a.RefsAt(consumed + lc + 1), p.SuffixFrom(lc), consumed + lc);
}

Result<PrefixSearchResult> SearchEngine::RangeSearch(PeerId start, const KeyPath& lo,
                                                     const KeyPath& hi,
                                                     size_t fanout) {
  PGRID_ASSIGN_OR_RETURN(std::vector<KeyPath> prefixes, DecomposeRange(lo, hi));
  PrefixSearchResult merged;
  std::unordered_set<uint64_t> seen_entries;
  std::unordered_set<PeerId> seen_responders;
  for (const KeyPath& prefix : prefixes) {
    PrefixSearchResult part = PrefixSearch(start, prefix, fanout);
    merged.messages += part.messages;
    for (PeerId p : part.responders) {
      if (seen_responders.insert(p).second) merged.responders.push_back(p);
    }
    for (IndexEntry& e : part.entries) {
      const uint64_t key = (static_cast<uint64_t>(e.holder) << 32) ^
                           (e.item_id * 0x9e3779b97f4a7c15ull);
      if (seen_entries.insert(key).second) merged.entries.push_back(std::move(e));
    }
  }
  return merged;
}

std::optional<PeerId> SearchEngine::RandomOnlinePeer(size_t tries) {
  for (size_t i = 0; i < tries; ++i) {
    PeerId p = static_cast<PeerId>(rng_->UniformIndex(grid_->size()));
    if (online_ == nullptr || online_->IsOnline(p, rng_)) return p;
  }
  return std::nullopt;
}

ReliableReadResult SearchEngine::ReadVersion(const KeyPath& key, ItemId item,
                                             const ReliableReadConfig& config) {
  PGRID_CHECK(config.Validate().ok());
  ReliableReadResult out;
  std::map<uint64_t, size_t> tally;
  for (size_t attempt = 0; attempt < config.max_attempts; ++attempt) {
    std::optional<PeerId> start = RandomOnlinePeer();
    if (!start.has_value()) break;
    QueryResult q = Query(*start, key);
    ++out.attempts;
    out.messages += q.messages;
    if (!q.found) continue;
    out.any_found = true;
    const uint64_t v = grid_->peer(q.responder).index().LatestVersionOf(item);
    if (++tally[v] >= config.quorum) {
      out.decided = true;
      out.version = v;
      return out;
    }
  }
  // No quorum: report the plurality answer (highest count, ties broken by larger
  // version, i.e. prefer fresher data).
  size_t best_count = 0;
  for (const auto& [v, c] : tally) {
    if (c > best_count || (c == best_count && v > out.version)) {
      best_count = c;
      out.version = v;
    }
  }
  return out;
}

}  // namespace pgrid
