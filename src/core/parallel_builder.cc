#include "core/parallel_builder.h"

#include <algorithm>
#include <utility>

#include "util/macros.h"
#include "util/stopwatch.h"

namespace pgrid {

ParallelGridBuilder::ParallelGridBuilder(Grid* grid, ExchangeEngine* exchange,
                                         MeetingScheduler* scheduler, Rng* master,
                                         const ParallelBuildOptions& options)
    : grid_(grid),
      exchange_(exchange),
      scheduler_(scheduler),
      master_(master),
      options_(options),
      pool_(options.threads),
      stream_base_(master != nullptr ? master->engine()() : 0) {
  PGRID_CHECK(grid != nullptr && exchange != nullptr && scheduler != nullptr &&
              master != nullptr);
  PGRID_CHECK_GT(options_.threads, 0u);
  PGRID_CHECK_GT(options_.batch_size, 0u);
  PGRID_CHECK_EQ(grid->size(), scheduler->num_peers());
  if (options_.profile) {
    profile_ = std::make_unique<BuildProfile>();
    profile_->threads = pool_.threads();
    profiler_ = std::make_unique<obs::PhaseProfiler>(pool_.threads());
    phase_exchange_ = profiler_->RegisterPhase("exchange");
  }
}

BuildReport ParallelGridBuilder::BuildToAverageDepth(double target_avg_depth,
                                                     uint64_t max_meetings) {
  Stopwatch watch;
  BuildReport report;
  const uint64_t exchanges_before = grid_->stats().count(MessageType::kExchange);
  while (grid_->AveragePathLength() < target_avg_depth &&
         report.meetings < max_meetings) {
    const size_t batch = static_cast<size_t>(
        std::min<uint64_t>(options_.batch_size, max_meetings - report.meetings));
    // Schedule serially on the master stream. The schedule depends only on the
    // seed and the number of meetings drawn so far -- never on how earlier
    // batches were executed.
    std::vector<Meeting> meetings;
    meetings.reserve(batch);
    const uint64_t t_schedule = profile_ != nullptr ? profiler_->NowNs() : 0;
    scheduler_->NextBatch(master_, batch, &meetings);
    if (profile_ != nullptr) {
      profile_->schedule_ns += profiler_->NowNs() - t_schedule;
    }
    std::vector<WorkItem> items;
    items.reserve(batch);
    for (const Meeting& m : meetings) items.push_back({m.a, m.b, /*depth=*/0});
    RunBatch(std::move(items));
    ++batch_ordinal_;
    report.meetings += batch;
  }
  report.exchanges = grid_->stats().count(MessageType::kExchange) - exchanges_before;
  report.avg_path_length = grid_->AveragePathLength();
  report.converged = report.avg_path_length >= target_avg_depth;
  report.seconds = watch.ElapsedSeconds();
  if (profile_ != nullptr) {
    profile_->total_ns += static_cast<uint64_t>(report.seconds * 1e9);
    profile_->profiler_dropped = profiler_->dropped();
  }
  return report;
}

BuildReport ParallelGridBuilder::BuildToFractionOfMaxDepth(double fraction,
                                                           uint64_t max_meetings) {
  PGRID_CHECK(fraction > 0.0 && fraction <= 1.0);
  const double target = fraction * static_cast<double>(exchange_->config().maxl);
  return BuildToAverageDepth(target, max_meetings);
}

void ParallelGridBuilder::EnsureSlots(size_t n) {
  while (slots_.size() < n) {
    slots_.push_back(
        std::make_unique<Slot>(DeriveStreamSeed(stream_base_, slots_.size())));
  }
}

void ParallelGridBuilder::RunBatch(std::vector<WorkItem> items) {
  if (claims_.size() < grid_->size()) claims_.resize(grid_->size(), 0);

  std::vector<WorkItem> wave;
  std::vector<WorkItem> leftover;
  while (!items.empty()) {
    // Greedy in-order wave partition: an item joins the wave iff neither endpoint
    // is claimed yet this wave; the rest keep their relative order.
    const bool prof = profile_ != nullptr;
    const uint64_t t_claim = prof ? profiler_->NowNs() : 0;
    ++claim_epoch_;
    wave.clear();
    leftover.clear();
    for (const WorkItem& it : items) {
      if (claims_[it.a] == claim_epoch_ || claims_[it.b] == claim_epoch_) {
        leftover.push_back(it);
        continue;
      }
      claims_[it.a] = claim_epoch_;
      claims_[it.b] = claim_epoch_;
      wave.push_back(it);
    }
    // Progress is guaranteed: the first unclaimed item always enters the wave.
    PGRID_CHECK(!wave.empty());
    EnsureSlots(wave.size());

    WaveProfile* wp = nullptr;
    if (prof) {
      profile_->waves.emplace_back();
      wp = &profile_->waves.back();
      wp->batch = batch_ordinal_;
      wp->wave = wave_ordinal_++;
      wp->scheduled = items.size();
      wp->width = wave.size();
      // At this point leftover holds only claim-deferred items (recursion
      // children are appended after the merge below).
      wp->conflicts = leftover.size();
      wp->claim_ns = profiler_->NowNs() - t_claim;
    }

    const uint64_t t_run = prof ? profiler_->NowNs() : 0;
    pool_.ParallelFor(wave.size(), [&](size_t i, size_t lane) {
      const uint64_t t_item = prof ? profiler_->NowNs() : 0;
      Slot& slot = *slots_[i];
      ExchangeShard shard;
      shard.rng = &slot.rng;
      shard.stats = &slot.stats;
      shard.deferred = &slot.deferred;
      exchange_->ExchangeSharded(wave[i].a, wave[i].b, wave[i].depth, &shard);
      slot.path_bits = shard.path_bits;
      if (prof) {
        profiler_->Record(lane, phase_exchange_, t_item,
                          profiler_->NowNs() - t_item, wp->wave);
      }
    });

    uint64_t t_merge = 0;
    if (prof) {
      const uint64_t now = profiler_->NowNs();
      wp->run_ns = now - t_run;
      // The pool join above is the happens-before edge; lanes are quiescent.
      wp->lane_busy_ns.assign(pool_.threads(), 0);
      for (size_t lane = 0; lane < pool_.threads(); ++lane) {
        for (const obs::PhaseProfiler::Event& e : profiler_->DrainLane(lane)) {
          wp->lane_busy_ns[lane] += e.dur_ns;
        }
      }
      t_merge = profiler_->NowNs();
    }

    // Barrier merge, strictly in slot order: ledger shards and path growth fold
    // into the grid; deferred children queue up behind this wave's leftovers.
    for (size_t i = 0; i < wave.size(); ++i) {
      Slot& slot = *slots_[i];
      grid_->stats().MergeFrom(slot.stats);
      slot.stats.Reset();
      if (slot.path_bits > 0) grid_->NotePathGrowth(slot.path_bits);
      slot.path_bits = 0;
      for (const PendingExchange& p : slot.deferred) {
        leftover.push_back({p.initiator, p.target, p.depth});
      }
      slot.deferred.clear();
    }
    if (prof) wp->merge_ns = profiler_->NowNs() - t_merge;
    std::swap(items, leftover);
  }
}

}  // namespace pgrid
