#include "core/parallel_builder.h"

#include <algorithm>
#include <utility>

#include "util/macros.h"
#include "util/stopwatch.h"

namespace pgrid {

ParallelGridBuilder::ParallelGridBuilder(Grid* grid, ExchangeEngine* exchange,
                                         MeetingScheduler* scheduler, Rng* master,
                                         const ParallelBuildOptions& options)
    : grid_(grid),
      exchange_(exchange),
      scheduler_(scheduler),
      master_(master),
      options_(options),
      pool_(options.threads),
      stream_base_(master != nullptr ? master->engine()() : 0) {
  PGRID_CHECK(grid != nullptr && exchange != nullptr && scheduler != nullptr &&
              master != nullptr);
  PGRID_CHECK_GT(options_.threads, 0u);
  PGRID_CHECK_GT(options_.batch_size, 0u);
  PGRID_CHECK_EQ(grid->size(), scheduler->num_peers());
  lanes_.resize(pool_.threads());
  if (options_.profile) {
    profile_ = std::make_unique<BuildProfile>();
    profile_->threads = pool_.threads();
    profiler_ = std::make_unique<obs::PhaseProfiler>(pool_.threads());
    phase_exchange_ = profiler_->RegisterPhase("exchange");
  }
}

BuildReport ParallelGridBuilder::BuildToAverageDepth(double target_avg_depth,
                                                     uint64_t max_meetings) {
  Stopwatch watch;
  BuildReport report;
  const uint64_t exchanges_before = grid_->stats().count(MessageType::kExchange);
  while (grid_->AveragePathLength() < target_avg_depth &&
         report.meetings < max_meetings) {
    const size_t batch = static_cast<size_t>(
        std::min<uint64_t>(options_.batch_size, max_meetings - report.meetings));
    // Schedule serially on the master stream. The schedule depends only on the
    // seed and the number of meetings drawn so far -- never on how earlier
    // batches were executed.
    std::vector<Meeting> meetings;
    meetings.reserve(batch);
    const uint64_t t_schedule = profile_ != nullptr ? profiler_->NowNs() : 0;
    scheduler_->NextBatch(master_, batch, &meetings);
    if (profile_ != nullptr) {
      profile_->schedule_ns += profiler_->NowNs() - t_schedule;
    }
    std::vector<WorkItem> items;
    items.reserve(batch);
    for (const Meeting& m : meetings) items.push_back({m.a, m.b, /*depth=*/0});
    RunBatch(std::move(items));
    ++batch_ordinal_;
    report.meetings += batch;
  }
  report.exchanges = grid_->stats().count(MessageType::kExchange) - exchanges_before;
  report.avg_path_length = grid_->AveragePathLength();
  report.converged = report.avg_path_length >= target_avg_depth;
  report.seconds = watch.ElapsedSeconds();
  if (profile_ != nullptr) {
    profile_->total_ns += static_cast<uint64_t>(report.seconds * 1e9);
    profile_->profiler_dropped = profiler_->dropped();
  }
  return report;
}

BuildReport ParallelGridBuilder::BuildToFractionOfMaxDepth(double fraction,
                                                           uint64_t max_meetings) {
  PGRID_CHECK(fraction > 0.0 && fraction <= 1.0);
  const double target = fraction * static_cast<double>(exchange_->config().maxl);
  return BuildToAverageDepth(target, max_meetings);
}

void ParallelGridBuilder::RunMeetings(const std::vector<Meeting>& meetings) {
  std::vector<WorkItem> items;
  items.reserve(meetings.size());
  for (const Meeting& m : meetings) {
    if (m.a == m.b) continue;
    items.push_back({m.a, m.b, /*depth=*/0});
  }
  if (items.empty()) return;
  RunBatch(std::move(items));
  ++batch_ordinal_;
}

void ParallelGridBuilder::EnsureSlots(size_t n) {
  while (slots_.size() < n) {
    slots_.push_back(
        std::make_unique<Slot>(DeriveStreamSeed(stream_base_, slots_.size())));
  }
}

void ParallelGridBuilder::RunBatch(std::vector<WorkItem> items) {
  const bool prof = profile_ != nullptr;
  std::vector<WorkItem> next;
  std::vector<WaveEdge> edges;
  while (!items.empty()) {
    // Color the round: every item lands in exactly one conflict-free wave, as a
    // pure function of the item list (core/wave_schedule.h).
    const uint64_t t_color = prof ? profiler_->NowNs() : 0;
    edges.clear();
    edges.reserve(items.size());
    for (const WorkItem& it : items) edges.push_back({it.a, it.b});
    schedule_.Color(edges);
    const uint64_t color_ns = prof ? profiler_->NowNs() - t_color : 0;

    next.clear();
    for (size_t w = 0; w < schedule_.num_waves(); ++w) {
      const std::vector<uint32_t>& wave = schedule_.wave(w);
      EnsureSlots(wave.size());

      WaveProfile* wp = nullptr;
      if (prof) {
        profile_->waves.emplace_back();
        wp = &profile_->waves.back();
        wp->batch = batch_ordinal_;
        wp->wave = wave_ordinal_++;
        wp->scheduled = items.size();
        wp->width = wave.size();
        wp->conflicts = 0;  // by construction of the coloring
        if (w == 0) wp->color_ns = color_ns;
      }

      const uint64_t t_run = prof ? profiler_->NowNs() : 0;
      pool_.ParallelFor(wave.size(), [&](size_t i, size_t lane) {
        const uint64_t t_item = prof ? profiler_->NowNs() : 0;
        Slot& slot = *slots_[i];
        Lane& sink = lanes_[lane];
        ExchangeShard shard;
        shard.rng = &slot.rng;
        shard.stats = &sink.stats;
        shard.deferred = &slot.deferred;
        const WorkItem& it = items[wave[i]];
        exchange_->ExchangeSharded(it.a, it.b, it.depth, &shard);
        sink.path_bits += shard.path_bits;
        if (prof) {
          profiler_->Record(lane, phase_exchange_, t_item,
                            profiler_->NowNs() - t_item, wp->wave);
        }
      });

      uint64_t t_gather = 0;
      if (prof) {
        const uint64_t now = profiler_->NowNs();
        wp->run_ns = now - t_run;
        // The pool join above is the happens-before edge; lanes are quiescent.
        wp->lane_busy_ns.assign(pool_.threads(), 0);
        for (size_t lane = 0; lane < pool_.threads(); ++lane) {
          for (const obs::PhaseProfiler::Event& e : profiler_->DrainLane(lane)) {
            wp->lane_busy_ns[lane] += e.dur_ns;
          }
        }
        t_gather = profiler_->NowNs();
      }

      // Wave barrier: only the recursion captures need ordering here. The
      // gather runs in slot order because it feeds the next round's item list
      // and therefore the next coloring -- it must be schedule-determined.
      for (size_t i = 0; i < wave.size(); ++i) {
        Slot& slot = *slots_[i];
        for (const PendingExchange& p : slot.deferred) {
          next.push_back({p.initiator, p.target, p.depth});
        }
        slot.deferred.clear();
      }
      if (prof) wp->merge_ns = profiler_->NowNs() - t_gather;
    }
    std::swap(items, next);
  }

  // Batch barrier: fold the additive lane shards into the grid ledger, in lane
  // order. The sums are commutative, so which lane ran which item (the only
  // timing-dependent quantity left) cannot affect the result. O(threads) serial
  // work per batch, where the old slot-order fold was O(slots) per wave.
  const uint64_t t_merge = prof ? profiler_->NowNs() : 0;
  uint64_t path_bits = 0;
  for (Lane& lane : lanes_) {
    grid_->stats().MergeFrom(lane.stats);
    lane.stats.Reset();
    path_bits += lane.path_bits;
    lane.path_bits = 0;
  }
  if (path_bits > 0) grid_->NotePathGrowth(path_bits);
  if (prof) profile_->merge_ns += profiler_->NowNs() - t_merge;
}

}  // namespace pgrid
