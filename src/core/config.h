// Configuration knobs for the P-Grid algorithms.
//
// Parameter names follow the paper: maxl, recmax, refmax, recbreadth, repetition.
// Additional flags expose design choices the paper discusses (bounded recursion
// fan-out, Sec. 5.1; data management during construction, Sec. 3) so ablation
// benchmarks can toggle them.

#pragma once

#include <cstddef>

#include "util/status.h"

namespace pgrid {

/// Parameters of the construction (exchange) algorithm, paper Fig. 3.
struct ExchangeConfig {
  /// Maximal path length peers may specialize to (the paper's maxl).
  size_t maxl = 6;

  /// Bound on the recursion depth of exchange (the paper's recmax). 0 disables
  /// recursive exchanges entirely.
  size_t recmax = 2;

  /// Maximal number of references kept per level (the paper's refmax).
  size_t refmax = 1;

  /// Bound on how many referenced peers are recursively contacted per side in Case 4.
  /// 0 means unbounded (the paper's original algorithm, whose cost grows exponentially
  /// in refmax -- Sec. 5.1 table 4); the paper's fix uses 2 (table 5).
  size_t recursion_fanout = 0;

  /// Whether exchanges redistribute leaf index entries and maintain buddy lists.
  /// Off for the pure-construction-cost experiments (T1-T5), on for Sec. 5.2.
  bool manage_data = true;

  /// Cap on the per-peer buddy list (known same-path replicas). 0 keeps the
  /// historical unbounded behavior: every replica ever met is remembered, which
  /// at community sizes far beyond the paper's experiments (100k+ peers with
  /// shallow maxl) makes buddy lists the dominant per-peer storage cost. A
  /// bound in the tens preserves the repair/anti-entropy fan-out while keeping
  /// per-peer state flat; the scaling benches arm it.
  size_t buddymax = 0;

  /// Repair under permanent departures (dynamic-membership extension): when true
  /// and an online model is attached, reference cross-pollination drops targets
  /// that are unreachable at exchange time, so dead references are gradually
  /// flushed from the structure. Off = paper behaviour (references are only ever
  /// replaced by sampling).
  bool prune_unreachable_refs = false;

  /// Validates parameter ranges.
  Status Validate() const {
    if (maxl == 0) return Status::InvalidArgument("maxl must be >= 1");
    if (refmax == 0) return Status::InvalidArgument("refmax must be >= 1");
    return Status::OK();
  }
};

/// Parameters of update propagation (Sec. 5.2).
struct UpdateConfig {
  /// Fan-out of breadth-first propagation at each level (the paper's recbreadth).
  size_t recbreadth = 2;

  /// How many times the propagation is restarted from a random peer (the paper's
  /// repetition).
  size_t repetition = 1;

  Status Validate() const {
    if (recbreadth == 0) return Status::InvalidArgument("recbreadth must be >= 1");
    if (repetition == 0) return Status::InvalidArgument("repetition must be >= 1");
    return Status::OK();
  }
};

/// Parameters of reliable (repeated, majority-decision) reads (Sec. 5.2).
struct ReliableReadConfig {
  /// A value is accepted once this many independent query answers agree on it.
  size_t quorum = 3;

  /// Hard cap on the number of independent queries issued.
  size_t max_attempts = 64;

  Status Validate() const {
    if (quorum == 0) return Status::InvalidArgument("quorum must be >= 1");
    if (max_attempts < quorum) {
      return Status::InvalidArgument("max_attempts must be >= quorum");
    }
    return Status::OK();
  }
};

}  // namespace pgrid
