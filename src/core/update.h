// Update propagation to replicas (Sec. 3 strategies, evaluated in Sec. 5.2 / Fig. 5).
//
// An update must reach *all* peers co-responsible for a key, not just one. Three
// strategies from the paper:
//  - kRepeatedDfs:        run the Fig. 2 depth-first search `repetition` times from
//                         random online peers; each run delivers the update to the
//                         one replica it reaches.
//  - kRepeatedDfsBuddies: as above, but every reached replica also forwards the
//                         update to its (online) buddies.
//  - kBreadthFirst:       breadth-first routing: at every routing level follow up to
//                         `recbreadth` (online) references instead of one, reaching
//                         many replicas per run; restarted `repetition` times.
//
// Reached replicas apply the new version to their leaf index entries. Messages are
// accounted as kUpdate: one per successful remote contact (routing hop, buddy
// notification); offline contacts cost nothing, matching the search metric.

#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/config.h"
#include "core/grid.h"
#include "obs/metrics.h"
#include "sim/online_model.h"
#include "util/rng.h"

namespace pgrid {

/// How an update is propagated to the replica set.
enum class UpdateStrategy {
  kRepeatedDfs,
  kRepeatedDfsBuddies,
  kBreadthFirst,
};

/// Returns a stable display name ("dfs", "dfs+buddies", "bfs").
const char* UpdateStrategyName(UpdateStrategy s);

/// Outcome of one update propagation.
struct UpdateOutcome {
  /// Messages spent (the insertion cost of Sec. 5.2).
  uint64_t messages = 0;

  /// Distinct replicas the update reached (responsible peers only).
  std::vector<PeerId> reached;
};

/// Propagates updates through a Grid.
class UpdateEngine {
 public:
  /// `online` may be null (everyone online).
  UpdateEngine(Grid* grid, const OnlineModel* online, Rng* rng);

  /// Propagates version `version` of item `item` (indexed under `key`) using
  /// `strategy` with the given parameters. Every reached replica bumps its index
  /// entries for the item.
  UpdateOutcome Propagate(const KeyPath& key, ItemId item, uint64_t version,
                          UpdateStrategy strategy, const UpdateConfig& config);

  /// Collects replicas reachable for `key` without modifying any state: used by the
  /// Fig. 5 experiment, which measures the fraction of replicas identified per
  /// message budget.
  UpdateOutcome Probe(const KeyPath& key, UpdateStrategy strategy,
                      const UpdateConfig& config);

 private:
  UpdateOutcome Run(const KeyPath& key, UpdateStrategy strategy,
                    const UpdateConfig& config);

  /// One depth-first pass: reaches at most one replica.
  void DfsPass(const KeyPath& key, bool with_buddies,
               std::unordered_set<PeerId>* reached, uint64_t* messages);

  /// One breadth-first pass from `peer`.
  void BfsPass(PeerId peer, const KeyPath& p, size_t consumed, size_t recbreadth,
               std::unordered_set<PeerId>* reached, uint64_t* messages);

  /// Forwards to up to `recbreadth` online members of `refs`; each successful
  /// contact costs one message and recurses into BfsPass.
  void BfsFanOut(Span<PeerId> refs, const KeyPath& querypath,
                 size_t consumed, size_t recbreadth,
                 std::unordered_set<PeerId>* reached, uint64_t* messages);

  bool IsOnline(PeerId p) const;

  Grid* grid_;
  const OnlineModel* online_;
  Rng* rng_;

  // Cached registry instruments (owned by the grid; see docs/observability.md).
  obs::Counter* updates_;   // runs of the propagation algorithm
  obs::Counter* messages_;  // mirrors MessageStats kUpdate exactly
  obs::Histogram* fanout_;  // replicas reached per propagation
};

}  // namespace pgrid
