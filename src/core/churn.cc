#include "core/churn.h"

#include "core/stats.h"
#include "util/macros.h"

namespace pgrid {

ChurnDriver::ChurnDriver(Grid* grid, ExchangeEngine* exchange,
                         MeetingScheduler* scheduler, OnlineModel* online, Rng* rng)
    : grid_(grid),
      exchange_(exchange),
      scheduler_(scheduler),
      online_(online),
      rng_(rng),
      dead_(grid->size(), 0),
      live_count_(grid->size()) {
  PGRID_CHECK(grid != nullptr && exchange != nullptr && scheduler != nullptr &&
              online != nullptr && rng != nullptr);
}

std::vector<PeerId> ChurnDriver::LivePeers() const {
  std::vector<PeerId> out;
  out.reserve(live_count_);
  for (PeerId p = 0; p < dead_.size(); ++p) {
    if (dead_[p] == 0) out.push_back(p);
  }
  return out;
}

PeerId ChurnDriver::RandomLivePeer() {
  PGRID_CHECK_GT(live_count_, 0u);
  while (true) {
    PeerId p = static_cast<PeerId>(rng_->UniformIndex(dead_.size()));
    if (dead_[p] == 0) return p;
  }
}

uint64_t ChurnDriver::Retire(PeerId peer, bool graceful) {
  PGRID_CHECK(dead_[peer] == 0);
  uint64_t handed = 0;
  if (graceful) {
    PeerState& leaving = grid_->peer(peer);
    if (!leaving.index().empty() || !leaving.foreign_entries().empty()) {
      // Prefer a live buddy (same path); otherwise any live co-responsible peer.
      PeerId heir = kInvalidPeer;
      auto eligible = [&](PeerId h) {
        return dead_[h] == 0 && (!heir_filter_ || heir_filter_(peer, h));
      };
      for (PeerId b : leaving.buddies()) {
        if (eligible(b)) {
          heir = b;
          break;
        }
      }
      if (heir == kInvalidPeer) {
        for (PeerId r : GridStats::ReplicasOf(*grid_, leaving.path())) {
          if (r != peer && eligible(r)) {
            heir = r;
            break;
          }
        }
      }
      if (heir != kInvalidPeer) {
        PeerState& target = grid_->peer(heir);
        leaving.index().ForEach([&target, &handed](const IndexEntry& e) {
          if (PathsOverlap(target.path(), e.key)) {
            if (target.index().InsertOrRefresh(e)) ++handed;
          } else {
            target.foreign_entries().push_back(e);
            ++handed;
          }
        });
        for (const IndexEntry& e : leaving.foreign_entries()) {
          target.foreign_entries().push_back(e);
          ++handed;
        }
        if (handed > 0) {
          grid_->stats().Record(MessageType::kDataTransfer, handed);
          grid_->stats().Record(MessageType::kControl);  // the handover session
          grid_->metrics().GetCounter("churn.entries_handed_over")->Increment(handed);
          grid_->metrics().GetCounter("churn.handovers")->Increment();
        }
      }
    }
  }
  dead_[peer] = 1;
  --live_count_;
  online_->Pin(peer, false);
  return handed;
}

void ChurnDriver::Revive(PeerId peer) {
  PGRID_CHECK(dead_[peer] != 0);
  dead_[peer] = 0;
  ++live_count_;
  online_->Pin(peer, std::nullopt);
}

PeerId ChurnDriver::Join(size_t count, double online_prob) {
  const PeerId first = static_cast<PeerId>(grid_->size());
  if (count == 0) return first;
  // One batched grow for the whole wave (see Round): per-peer AddPeer() would
  // rebuild the grid's atomic load vector per joiner.
  grid_->AddPeers(count);
  for (size_t i = 0; i < count; ++i) {
    online_->AddPeer(online_prob, rng_);
    dead_.push_back(0);
    ++live_count_;
  }
  scheduler_->SetNumPeers(grid_->size());
  return first;
}

ChurnRound ChurnDriver::Round(const ChurnConfig& config) {
  PGRID_CHECK(config.Validate().ok());
  ChurnRound round;

  const size_t crashes = static_cast<size_t>(
      static_cast<double>(live_count_) * config.crash_fraction);
  const size_t leaves = static_cast<size_t>(
      static_cast<double>(live_count_) * config.leave_fraction);
  const size_t joins = static_cast<size_t>(
      static_cast<double>(live_count_) * config.join_fraction);

  for (size_t i = 0; i < crashes && live_count_ > 2; ++i) {
    Retire(RandomLivePeer(), /*graceful=*/false);
    ++round.crashed;
  }
  for (size_t i = 0; i < leaves && live_count_ > 2; ++i) {
    round.handover_entries += Retire(RandomLivePeer(), /*graceful=*/true);
    ++round.left_gracefully;
  }
  if (joins > 0) {
    // One batched grow for the whole wave: AddPeer() per joiner rebuilds the
    // grid's atomic load vector each time, turning mass joins quadratic.
    grid_->AddPeers(joins);
    for (size_t i = 0; i < joins; ++i) {
      online_->AddPeer(config.join_online_prob, rng_);
      dead_.push_back(0);
      ++live_count_;
      ++round.joined;
    }
  }
  scheduler_->SetNumPeers(grid_->size());

  for (size_t m = 0; m < config.meetings_per_round; ++m) {
    Meeting meeting = scheduler_->Next(rng_);
    // Dead peers cannot meet; availability of live peers is handled inside the
    // exchange (recursion targets) and by the experiment's own online model.
    if (dead_[meeting.a] != 0 || dead_[meeting.b] != 0) continue;
    exchange_->Exchange(meeting.a, meeting.b);
    ++round.meetings;
  }

  round.live = live_count_;
  return round;
}

}  // namespace pgrid
