#include "core/insert.h"

#include "util/macros.h"

namespace pgrid {

InsertEngine::InsertEngine(Grid* grid, const OnlineModel* online, Rng* rng)
    : grid_(grid), online_(online), rng_(rng) {
  PGRID_CHECK(grid != nullptr && rng != nullptr);
}

Result<InsertOutcome> InsertEngine::Insert(const DataItem& item, PeerId holder,
                                           const UpdateConfig& config) {
  PGRID_RETURN_IF_ERROR(config.Validate());
  grid_->peer(holder).store().Upsert(item);

  IndexEntry entry;
  entry.holder = holder;
  entry.item_id = item.id;
  entry.key = item.key;
  entry.version = item.version;

  UpdateEngine update(grid_, online_, rng_);
  UpdateOutcome reached =
      update.Probe(item.key, UpdateStrategy::kBreadthFirst, config);

  InsertOutcome out;
  out.messages = reached.messages;
  obs::Counter* installed = grid_->metrics().GetCounter("insert.entries_installed");
  for (PeerId p : reached.reached) {
    if (grid_->peer(p).index().InsertOrRefresh(entry)) {
      grid_->stats().Record(MessageType::kDataTransfer);
      installed->Increment();
    }
    ++out.replicas_reached;
  }
  // The holder itself may be co-responsible; index locally too (free).
  if (PathsOverlap(grid_->peer(holder).path(), entry.key)) {
    grid_->peer(holder).index().InsertOrRefresh(entry);
    if (out.replicas_reached == 0) out.replicas_reached = 1;
  }
  if (out.replicas_reached == 0) {
    return Status::FailedPrecondition(
        "no replica reachable for key " + item.key.ToString() +
        "; item stored at holder only");
  }
  return out;
}

}  // namespace pgrid
