#include "core/analysis.h"

#include <cmath>

namespace pgrid {

size_t MinKeyLength(double d_global, double i_leaf) {
  if (d_global <= i_leaf) return 0;
  return static_cast<size_t>(std::ceil(std::log2(d_global / i_leaf)));
}

double MinPeers(double d_global, double i_leaf, size_t refmax) {
  return d_global / i_leaf * static_cast<double>(refmax);
}

double SearchSuccessProbability(double online_prob, size_t refmax, size_t key_length) {
  const double miss_all = std::pow(1.0 - online_prob, static_cast<double>(refmax));
  return std::pow(1.0 - miss_all, static_cast<double>(key_length));
}

Result<SizingResult> EvaluateSizing(const SizingInput& in) {
  if (in.d_global <= 0) return Status::InvalidArgument("d_global must be positive");
  if (in.i_leaf <= 0) return Status::InvalidArgument("i_leaf must be positive");
  if (in.s_peer <= 0) return Status::InvalidArgument("s_peer must be positive");
  if (in.ref_bytes <= 0) return Status::InvalidArgument("ref_bytes must be positive");
  if (in.refmax == 0) return Status::InvalidArgument("refmax must be >= 1");
  if (in.online_prob < 0.0 || in.online_prob > 1.0) {
    return Status::InvalidArgument("online_prob must be in [0, 1]");
  }
  SizingResult out;
  out.i_peer = in.s_peer / in.ref_bytes;
  out.key_length = MinKeyLength(in.d_global, in.i_leaf);
  out.index_entries =
      in.i_leaf + static_cast<double>(out.key_length * in.refmax);
  out.storage_feasible = out.index_entries <= out.i_peer;
  out.min_peers = MinPeers(in.d_global, in.i_leaf, in.refmax);
  out.search_success =
      SearchSuccessProbability(in.online_prob, in.refmax, out.key_length);
  return out;
}

SizingInput GnutellaExampleInput() {
  SizingInput in;
  in.d_global = 1e7;
  in.ref_bytes = 10;
  in.s_peer = 1e5;
  in.i_leaf = 1e4 - 200;
  in.refmax = 20;
  in.online_prob = 0.3;
  return in;
}

}  // namespace pgrid
