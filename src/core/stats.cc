#include "core/stats.h"

#include <algorithm>
#include <sstream>

namespace pgrid {

std::map<size_t, size_t> GridStats::PathLengthHistogram(const Grid& grid) {
  std::map<size_t, size_t> hist;
  for (const PeerState& p : grid) ++hist[p.depth()];
  return hist;
}

std::unordered_map<KeyPath, size_t, KeyPathHash> GridStats::ReplicaCounts(
    const Grid& grid) {
  std::unordered_map<KeyPath, size_t, KeyPathHash> counts;
  for (const PeerState& p : grid) ++counts[p.path()];
  return counts;
}

std::map<size_t, size_t> GridStats::ReplicaHistogram(const Grid& grid) {
  auto counts = ReplicaCounts(grid);
  std::map<size_t, size_t> hist;
  for (const PeerState& p : grid) ++hist[counts[p.path()]];
  return hist;
}

double GridStats::AverageReplicationFactor(const Grid& grid) {
  if (grid.size() == 0) return 0.0;
  auto counts = ReplicaCounts(grid);
  double sum = 0.0;
  for (const PeerState& p : grid) sum += static_cast<double>(counts[p.path()]);
  return sum / static_cast<double>(grid.size());
}

std::vector<PeerId> GridStats::ReplicasOf(const Grid& grid, const KeyPath& key) {
  std::vector<PeerId> out;
  for (const PeerState& p : grid) {
    if (PathsOverlap(p.path(), key)) out.push_back(p.id());
  }
  return out;
}

double GridStats::AverageTotalRefs(const Grid& grid) {
  if (grid.size() == 0) return 0.0;
  double sum = 0.0;
  for (const PeerState& p : grid) sum += static_cast<double>(p.TotalRefs());
  return sum / static_cast<double>(grid.size());
}

size_t GridStats::MaxTotalRefs(const Grid& grid) {
  size_t best = 0;
  for (const PeerState& p : grid) best = std::max(best, p.TotalRefs());
  return best;
}

GridStats::LoadProfile GridStats::QueryLoadProfile(const Grid& grid) {
  LoadProfile out;
  std::vector<uint64_t> load = grid.query_load();
  load.resize(grid.size(), 0);
  if (load.empty()) return out;
  std::sort(load.begin(), load.end());
  uint64_t total = 0;
  for (uint64_t l : load) {
    total += l;
    if (l == 0) ++out.idle_peers;
  }
  out.mean = static_cast<double>(total) / static_cast<double>(load.size());
  out.max = load.back();
  out.p50 = load[load.size() / 2];
  out.p99 = load[load.size() * 99 / 100];
  out.imbalance = out.mean > 0 ? static_cast<double>(out.max) / out.mean : 0.0;
  return out;
}

Status GridStats::CheckInvariants(const Grid& grid, const ExchangeConfig& config) {
  for (const PeerState& a : grid) {
    if (a.depth() > config.maxl) {
      return Status::Internal("peer " + std::to_string(a.id()) + " exceeds maxl");
    }
    for (size_t level = 1; level <= a.depth(); ++level) {
      const auto& refs = a.RefsAt(level);
      if (refs.size() > config.refmax) {
        std::ostringstream msg;
        msg << "peer " << a.id() << " holds " << refs.size() << " refs at level "
            << level << " (refmax " << config.refmax << ")";
        return Status::Internal(msg.str());
      }
      for (PeerId r : refs) {
        if (r == a.id()) {
          return Status::Internal("peer " + std::to_string(a.id()) +
                                  " references itself");
        }
        const PeerState& target = grid.peer(r);
        // prefix(i, target) == prefix(i-1, a) + complement(p_i): the target's path
        // must be at least `level` long, agree with a on the first level-1 bits, and
        // differ at bit `level`.
        if (target.depth() < level) {
          std::ostringstream msg;
          msg << "peer " << a.id() << " level " << level << " ref " << r
              << " has too-short path " << target.path();
          return Status::Internal(msg.str());
        }
        const size_t common = a.path().CommonPrefixLength(target.path());
        if (common < level - 1 || target.PathBit(level) != ComplementBit(a.PathBit(level))) {
          std::ostringstream msg;
          msg << "reference property violated: peer " << a.id() << " (path "
              << a.path() << ") level " << level << " ref " << r << " (path "
              << target.path() << ")";
          return Status::Internal(msg.str());
        }
      }
    }
    for (PeerId b : a.buddies()) {
      if (b == a.id()) {
        return Status::Internal("peer " + std::to_string(a.id()) +
                                " is its own buddy");
      }
      if (!(grid.peer(b).path() == a.path())) {
        std::ostringstream msg;
        msg << "buddy property violated: peer " << a.id() << " (path " << a.path()
            << ") lists buddy " << b << " (path " << grid.peer(b).path() << ")";
        return Status::Internal(msg.str());
      }
    }
  }
  return Status::OK();
}

}  // namespace pgrid
