// Routed insertion of data items (the library-level publish operation).
//
// The experiment harnesses seed grids with oracle placement (workload/corpus.h)
// because Sec. 5.2 assumes a perfectly consistent starting state. A real system
// inserts through the structure itself: the holder stores the item, then the index
// entry is propagated to co-responsible peers using the same breadth-first routing
// as updates (an insert IS an update from version 0). Coverage is therefore
// probabilistic, governed by the same recbreadth/repetition trade-off as Sec. 5.2.

#pragma once

#include "core/config.h"
#include "core/grid.h"
#include "core/update.h"
#include "sim/online_model.h"
#include "storage/data_item.h"
#include "util/rng.h"

namespace pgrid {

/// Outcome of one routed insert.
struct InsertOutcome {
  /// Messages spent propagating the entry.
  uint64_t messages = 0;

  /// Replicas that installed the index entry.
  size_t replicas_reached = 0;
};

/// Publishes items into a grid by routing.
class InsertEngine {
 public:
  /// `online` may be null (everyone online).
  InsertEngine(Grid* grid, const OnlineModel* online, Rng* rng);

  /// Stores `item` at `holder` and installs its index entry at every replica a
  /// breadth-first propagation (parameters in `config`) reaches. FailedPrecondition
  /// if no replica could be reached (the entry is still stored at the holder; a
  /// retry can succeed under different availability).
  Result<InsertOutcome> Insert(const DataItem& item, PeerId holder,
                               const UpdateConfig& config);

 private:
  Grid* grid_;
  const OnlineModel* online_;
  Rng* rng_;
};

}  // namespace pgrid
