// Pooled storage for a peer's per-level reference lists.
//
// The paper's routing table is a short sequence R_1..R_n of tiny sets (refmax
// is single digits in every experiment). A vector-of-vectors spends a 24-byte
// shell plus a separate allocation per level; PackedRefs keeps the whole table
// in ONE heap block laid out as
//
//   [ uint32 counts[cap_levels] | PeerId elems[cap_elems] ]
//
// with the levels' elements contiguous in level order and no per-level slack.
// Levels only ever append (paths only grow), so the counts region is extended
// monotonically; editing an inner level shifts the tail elements by memmove,
// which at refmax * maxl elements is a few dozen bytes. Order within a level
// is preserved exactly -- digests, snapshots, and RNG sampling all consume
// reference lists in stored order.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "sim/types.h"
#include "util/macros.h"
#include "util/span.h"

namespace pgrid {

class PackedRefs {
 public:
  PackedRefs() = default;
  PackedRefs(const PackedRefs& other) { Assign(other); }
  PackedRefs& operator=(const PackedRefs& other) {
    if (this != &other) {
      delete[] buf_;
      Assign(other);
    }
    return *this;
  }
  PackedRefs(PackedRefs&& other) noexcept { Steal(other); }
  PackedRefs& operator=(PackedRefs&& other) noexcept {
    if (this != &other) {
      delete[] buf_;
      Steal(other);
    }
    return *this;
  }
  ~PackedRefs() { delete[] buf_; }

  /// Number of levels (the owning peer's path depth).
  size_t depth() const { return depth_; }

  /// Total references across all levels.
  size_t total() const { return total_; }

  /// The reference list of 0-indexed level `level`. Invalidated by any mutation.
  Span<PeerId> At(size_t level) const {
    PGRID_CHECK_LT(level, depth_);
    return Span<PeerId>(elems() + Offset(level), counts()[level]);
  }

  /// Appends a new, empty level.
  void AppendLevel() {
    if (depth_ == cap_levels_) {
      Reallocate(cap_levels_ == 0 ? kMinLevels : cap_levels_ * 2, cap_elems_);
    }
    counts()[depth_] = 0;
    ++depth_;
  }

  /// Replaces level `level` wholesale. `refs` must not alias this table.
  void Set(size_t level, const PeerId* refs, size_t n) {
    PGRID_CHECK_LT(level, depth_);
    const uint32_t old_n = counts()[level];
    if (n > old_n) EnsureElems(total_ - old_n + n);
    const size_t at = Offset(level);
    ShiftTail(at + old_n, static_cast<ptrdiff_t>(n) - static_cast<ptrdiff_t>(old_n));
    if (n != 0) std::memcpy(elems() + at, refs, n * sizeof(PeerId));
    counts()[level] = static_cast<uint32_t>(n);
    total_ = total_ - old_n + static_cast<uint32_t>(n);
  }

  /// Appends `peer` to level `level` if absent. Returns true if added.
  bool Add(size_t level, PeerId peer) {
    PGRID_CHECK_LT(level, depth_);
    for (PeerId r : At(level)) {
      if (r == peer) return false;
    }
    EnsureElems(total_ + 1);
    const size_t at = Offset(level) + counts()[level];
    ShiftTail(at, 1);
    elems()[at] = peer;
    ++counts()[level];
    ++total_;
    return true;
  }

  /// Removes every occurrence of `peer` from level `level` (stored order of the
  /// survivors is preserved). Returns the number removed.
  size_t Remove(size_t level, PeerId peer) {
    PGRID_CHECK_LT(level, depth_);
    const size_t at = Offset(level);
    PeerId* e = elems();
    uint32_t kept = 0;
    const uint32_t n = counts()[level];
    for (uint32_t i = 0; i < n; ++i) {
      if (e[at + i] != peer) e[at + kept++] = e[at + i];
    }
    const uint32_t removed = n - kept;
    if (removed != 0) {
      ShiftTail(at + n, -static_cast<ptrdiff_t>(removed));
      counts()[level] = kept;
      total_ -= removed;
    }
    return removed;
  }

  /// Heap bytes owned by the pooled block, counted at capacity.
  size_t ApproxMemoryBytes() const {
    return (size_t{cap_levels_} + cap_elems_) * sizeof(uint32_t);
  }

 private:
  static constexpr uint32_t kMinLevels = 8;
  static constexpr uint32_t kMinElems = 8;

  static_assert(sizeof(PeerId) == sizeof(uint32_t),
                "counts and elements share one uint32 buffer");

  uint32_t* counts() { return buf_; }
  const uint32_t* counts() const { return buf_; }
  PeerId* elems() { return buf_ + cap_levels_; }
  const PeerId* elems() const { return buf_ + cap_levels_; }

  /// Element offset of the first reference of 0-indexed `level`: the prefix sum
  /// of the preceding level counts (depth is bounded by maxl, single digits).
  size_t Offset(size_t level) const {
    size_t off = 0;
    for (size_t l = 0; l < level; ++l) off += counts()[l];
    return off;
  }

  /// Moves the elements in [from, total_) by `delta` slots (capacity must
  /// already accommodate the result).
  void ShiftTail(size_t from, ptrdiff_t delta) {
    if (delta == 0 || from >= total_) return;
    PeerId* e = elems();
    std::memmove(e + from + delta, e + from, (total_ - from) * sizeof(PeerId));
  }

  void EnsureElems(size_t need) {
    if (need <= cap_elems_) return;
    uint32_t cap = cap_elems_ == 0 ? kMinElems : cap_elems_ * 2;
    while (cap < need) cap *= 2;
    Reallocate(cap_levels_ == 0 ? kMinLevels : cap_levels_, cap);
  }

  void Reallocate(uint32_t cap_levels, uint32_t cap_elems) {
    uint32_t* grown = new uint32_t[size_t{cap_levels} + cap_elems];
    if (buf_ != nullptr) {
      std::memcpy(grown, buf_, depth_ * sizeof(uint32_t));
      std::memcpy(grown + cap_levels, elems(), total_ * sizeof(PeerId));
      delete[] buf_;
    }
    buf_ = grown;
    cap_levels_ = cap_levels;
    cap_elems_ = cap_elems;
  }

  void Assign(const PackedRefs& other) {
    depth_ = other.depth_;
    total_ = other.total_;
    // Copies allocate exactly what the canonical contents need.
    cap_levels_ = depth_ == 0 ? 0 : depth_;
    cap_elems_ = total_;
    if (cap_levels_ + cap_elems_ != 0) {
      buf_ = new uint32_t[size_t{cap_levels_} + cap_elems_];
      std::memcpy(buf_, other.buf_, depth_ * sizeof(uint32_t));
      std::memcpy(buf_ + cap_levels_, other.elems(), total_ * sizeof(PeerId));
    } else {
      buf_ = nullptr;
    }
  }

  void Steal(PackedRefs& other) {
    buf_ = other.buf_;
    depth_ = other.depth_;
    total_ = other.total_;
    cap_levels_ = other.cap_levels_;
    cap_elems_ = other.cap_elems_;
    other.buf_ = nullptr;
    other.depth_ = other.total_ = other.cap_levels_ = other.cap_elems_ = 0;
  }

  uint32_t* buf_ = nullptr;
  uint32_t depth_ = 0;
  uint32_t total_ = 0;
  uint32_t cap_levels_ = 0;
  uint32_t cap_elems_ = 0;
};

}  // namespace pgrid
