// Per-wave utilization profile of a parallel build -- the report that answers
// "where does the parallel build spend its time?".
//
// The parallel builder (core/parallel_builder.h) alternates serial phases
// (schedule drawing, wave coloring, barrier merges) with parallel waves. When
// profiling is on it fills one WaveProfile per wave: the wave's structure
// (batch/wave ordinals, items scheduled, wave width, conflicts -- 0 ever since
// the edge-colored schedule replaced greedy claiming) plus its timings
// (color/run/merge wall time and per-lane busy time inside the wave).
// Structure is a function of (seed, batch_size) only -- the coloring runs
// serially -- so StructureJson() is byte-identical across thread counts and
// runs, which tests/parallel_builder_test.cc pins. Timings obviously vary; the
// derived quantities (serial fraction, utilization, barrier-wait distribution,
// claim-conflict rate) are what the scaling analysis consumes.
//
// Amdahl bookkeeping:
//   serial_ns    = schedule_ns + merge_ns + sum(color_ns) + sum(wave merge_ns)
//   run_ns       = sum over waves of the ParallelFor wall time
//   busy_ns      = sum over waves and lanes of exchange execution time
//   barrier wait = run_ns(wave) - lane_busy_ns(wave, lane), per lane per wave
//
// ToJson() is the full report (schema in docs/observability.md);
// ToCollapsedStacks() renders the same accounting as flamegraph input.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pgrid {

/// One conflict-free wave of a parallel build.
struct WaveProfile {
  uint64_t batch = 0;      ///< batch ordinal within the build (0-based)
  uint64_t wave = 0;       ///< wave ordinal within the build (0-based, global)
  uint64_t scheduled = 0;  ///< work items pending when the round was colored
  uint64_t width = 0;      ///< items that ran in this wave
  uint64_t conflicts = 0;  ///< claim retries; 0 under the edge-colored schedule
  uint64_t color_ns = 0;   ///< serial: edge coloring (first wave of each round)
  uint64_t run_ns = 0;     ///< wall time of the wave's ParallelFor
  uint64_t merge_ns = 0;   ///< serial: slot-order deferred gather at the barrier
  /// Exchange execution time per lane inside run_ns (size = thread count).
  std::vector<uint64_t> lane_busy_ns;
};

/// Whole-build profile: per-wave records plus the serial phases around them.
struct BuildProfile {
  size_t threads = 1;
  uint64_t schedule_ns = 0;       ///< serial NextBatch time, all batches
  uint64_t merge_ns = 0;          ///< serial: per-batch lane-shard ledger folds
  uint64_t total_ns = 0;          ///< wall time of the whole build call
  uint64_t profiler_dropped = 0;  ///< lane-buffer overflow events (0 = exact)
  std::vector<WaveProfile> waves;

  uint64_t SerialNs() const;  ///< schedule + color + wave/batch merges
  uint64_t RunNs() const;     ///< sum of wave ParallelFor wall times
  uint64_t BusyNs() const;    ///< sum of per-lane exchange time

  /// Fraction of total_ns spent in serial phases (0 when total_ns == 0).
  double SerialFraction() const;

  /// BusyNs / (threads * RunNs): how much of the parallel region's capacity did
  /// useful work (0 when RunNs == 0).
  double Utilization() const;

  /// Fraction of scheduled items that hit a claim retry. Identically 0 with the
  /// precomputed wave schedule; kept so the scaling guard can pin it there.
  double ClaimConflictRate() const;

  /// Barrier wait per (wave, lane): wave run wall time minus the lane's busy
  /// time, clamped at 0. One sample per lane per wave, wave-major order.
  std::vector<uint64_t> BarrierWaitSamplesNs() const;

  /// Full report: totals, derived fractions, barrier-wait percentiles, and the
  /// per-wave array. Deterministic modulo timings.
  std::string ToJson() const;

  /// Structure only (batch/wave/scheduled/width/conflicts per wave; no timings,
  /// no thread count): byte-identical across thread counts for a fixed
  /// (seed, batch_size).
  std::string StructureJson() const;

  /// Flamegraph input ("build;wave;run;lane0;busy 1234" lines) of the same
  /// accounting. Sorted by stack, so deterministic given deterministic timings.
  std::string ToCollapsedStacks() const;
};

}  // namespace pgrid
