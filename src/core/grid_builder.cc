#include "core/grid_builder.h"

#include "util/macros.h"
#include "util/stopwatch.h"

namespace pgrid {

GridBuilder::GridBuilder(Grid* grid, ExchangeEngine* exchange,
                         MeetingScheduler* scheduler, Rng* rng)
    : grid_(grid), exchange_(exchange), scheduler_(scheduler), rng_(rng) {
  PGRID_CHECK(grid != nullptr && exchange != nullptr && scheduler != nullptr &&
              rng != nullptr);
  PGRID_CHECK_EQ(grid->size(), scheduler->num_peers());
}

BuildReport GridBuilder::BuildToAverageDepth(double target_avg_depth,
                                             uint64_t max_meetings) {
  Stopwatch watch;
  BuildReport report;
  const uint64_t exchanges_before = grid_->stats().count(MessageType::kExchange);
  while (grid_->AveragePathLength() < target_avg_depth &&
         report.meetings < max_meetings) {
    Meeting m = scheduler_->Next(rng_);
    exchange_->Exchange(m.a, m.b);
    ++report.meetings;
  }
  report.exchanges = grid_->stats().count(MessageType::kExchange) - exchanges_before;
  report.avg_path_length = grid_->AveragePathLength();
  report.converged = report.avg_path_length >= target_avg_depth;
  report.seconds = watch.ElapsedSeconds();
  return report;
}

BuildReport GridBuilder::BuildToFractionOfMaxDepth(double fraction,
                                                   uint64_t max_meetings) {
  PGRID_CHECK(fraction > 0.0 && fraction <= 1.0);
  const double target = fraction * static_cast<double>(exchange_->config().maxl);
  return BuildToAverageDepth(target, max_meetings);
}

}  // namespace pgrid
