// The randomized P-Grid construction algorithm (paper Fig. 3).
//
// Whenever two peers meet they execute `exchange`:
//  - If their paths share a prefix of length lc > 0, they cross-pollinate their
//    reference sets at level lc (union, then each keeps a random refmax-subset).
//  - Case 1: both paths are identical and below maxl -> introduce a new level; one
//    takes bit 0, the other bit 1, and they reference each other.
//  - Case 2/3: one path is a proper prefix of the other -> the shorter peer
//    specializes with the complement of the longer peer's next bit; mutual
//    references are installed at that level.
//  - Case 4: the paths diverge below their ends -> each peer forwards the other to
//    its references on the far side, recursively (bounded by recmax, and optionally
//    by a per-side fan-out bound -- the stabilizing fix of Sec. 5.1).
//  - Replica case (not in the paper's pseudo code, implied by Sec. 3/5.2): identical
//    paths at maxl cannot split; the peers record each other as buddies and merge
//    their leaf indexes.
//
// When ExchangeConfig::manage_data is set, path changes also redistribute leaf index
// entries so each entry ends up at peers whose path overlaps its key; entries that
// temporarily match neither peer are parked in the owner's foreign buffer and offered
// again at later meetings (never dropped).
//
// Every invocation (including recursive ones) is recorded as one kExchange message --
// the cost metric `e` of Sec. 5.1.

#pragma once

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "core/grid.h"
#include "core/split_policy.h"
#include "obs/metrics.h"
#include "sim/online_model.h"
#include "util/rng.h"

namespace pgrid {

/// A recursive exchange (Fig. 3 case 4) captured during sharded execution instead
/// of executed inline. The parallel driver schedules it into a later conflict-free
/// wave; its randomness comes from the deterministic per-slot stream it is
/// assigned to (see core/parallel_builder.h), never from thread timing.
struct PendingExchange {
  PeerId initiator = 0;
  PeerId target = 0;
  uint32_t depth = 0;
};

/// Sinks for one sharded exchange execution (see ParallelGridBuilder). A shard
/// isolates everything an exchange touches besides the two peers' own state, so
/// conflict-free meetings can run concurrently:
///  - all random draws come from `rng` (a per-meeting counter-derived stream),
///  - message accounting goes to the `stats` shard, merged at the batch barrier,
///  - path growth accumulates in `path_bits`, applied at the barrier,
///  - case-4 recursion is captured into `deferred` (when set) instead of executed
///    inline, because recursion targets are third peers another concurrent meeting
///    may own. A null `deferred` recurses inline (the sequential behavior).
struct ExchangeShard {
  Rng* rng = nullptr;
  MessageStats* stats = nullptr;
  uint64_t path_bits = 0;
  std::vector<PendingExchange>* deferred = nullptr;
};

/// Executes the construction algorithm against a Grid.
class ExchangeEngine {
 public:
  /// `grid`, `rng` must outlive the engine. `online` may be null (everyone online);
  /// when set, recursive exchange targets are skipped while offline, as in Fig. 3.
  /// `split_policy` may refine (never widen) the maxl bound on specialization --
  /// see split_policy.h; null means the paper's plain maxl rule.
  ExchangeEngine(Grid* grid, const ExchangeConfig& config, Rng* rng,
                 const OnlineModel* online = nullptr,
                 const SplitPolicy* split_policy = nullptr);

  /// Runs one meeting between two distinct peers (the paper's exchange(a1, a2, 0)).
  void Exchange(PeerId a1, PeerId a2);

  /// Runs one (possibly recursive, depth > 0) exchange recording into `shard`
  /// instead of the engine's Rng and the grid's ledger. Mutates only the states of
  /// `a1`, `a2` (and, with a null `shard->deferred`, of inline recursion targets);
  /// grid-level accounting lands in the shard for a deterministic barrier merge.
  /// Metrics-registry instruments are atomic and recorded directly. Thread-safe
  /// for concurrent calls whose peer pairs are disjoint.
  void ExchangeSharded(PeerId a1, PeerId a2, uint32_t depth, ExchangeShard* shard);

  /// Total exchange executions recorded so far (the paper's `e`).
  uint64_t num_exchanges() const {
    return grid_->stats().count(MessageType::kExchange);
  }

  const ExchangeConfig& config() const { return config_; }

 private:
  void ExchangeImpl(PeerId id1, PeerId id2, size_t depth, ExchangeShard* shard);

  /// Level-lc reference cross-pollination: union both sets, each keeps a random
  /// refmax-subset.
  void CrossPollinateRefs(PeerState* a1, PeerState* a2, size_t level,
                          ExchangeShard* shard);

  /// Cases 2/3: `shorter` (whose path equals the common prefix) specializes with the
  /// complement of `longer`'s bit at level lc+1; installs mutual references.
  void SplitShorter(PeerState* shorter, PeerState* longer, size_t lc,
                    ExchangeShard* shard);

  /// Replication-balancing variant of cases 2/3: `shorter` adopts the partner's bit
  /// (joins its side) and inherits a sample of the partner's references at the new
  /// level. Triggered by SplitPolicy::PreferClone.
  void CloneShorter(PeerState* shorter, PeerState* longer, size_t lc,
                    ExchangeShard* shard);

  /// Replica meeting: leaf index merge, plus mutual buddy registration when the
  /// paths are final (at maxl).
  void MergeReplicas(PeerState* a1, PeerState* a2, bool record_buddies,
                     ExchangeShard* shard);

  /// Moves leaf index entries between the two peers so that each retained entry
  /// overlaps its holder's (possibly just-extended) path.
  void ReconcileData(PeerState* x, PeerState* y, ExchangeShard* shard);

  bool IsOnline(PeerId p, Rng* rng) const;

  /// True iff `a` may extend its path when meeting `partner` with common prefix
  /// length `lc`: always bounded by maxl, optionally further restricted by the
  /// split policy.
  bool MaySplit(const PeerState& a, const PeerState& partner, size_t lc) const;

  Grid* grid_;
  ExchangeConfig config_;
  Rng* rng_;
  const OnlineModel* online_;
  const SplitPolicy* split_policy_;

  // Cached registry instruments (owned by the grid; see docs/observability.md).
  obs::Counter* exchanges_;  // mirrors MessageStats kExchange exactly
  obs::Counter* splits_;
  obs::Counter* entries_moved_;  // mirrors MessageStats kDataTransfer (this engine)
  obs::Histogram* recursion_depth_;
};

}  // namespace pgrid
