// The randomized P-Grid construction algorithm (paper Fig. 3).
//
// Whenever two peers meet they execute `exchange`:
//  - If their paths share a prefix of length lc > 0, they cross-pollinate their
//    reference sets at level lc (union, then each keeps a random refmax-subset).
//  - Case 1: both paths are identical and below maxl -> introduce a new level; one
//    takes bit 0, the other bit 1, and they reference each other.
//  - Case 2/3: one path is a proper prefix of the other -> the shorter peer
//    specializes with the complement of the longer peer's next bit; mutual
//    references are installed at that level.
//  - Case 4: the paths diverge below their ends -> each peer forwards the other to
//    its references on the far side, recursively (bounded by recmax, and optionally
//    by a per-side fan-out bound -- the stabilizing fix of Sec. 5.1).
//  - Replica case (not in the paper's pseudo code, implied by Sec. 3/5.2): identical
//    paths at maxl cannot split; the peers record each other as buddies and merge
//    their leaf indexes.
//
// When ExchangeConfig::manage_data is set, path changes also redistribute leaf index
// entries so each entry ends up at peers whose path overlaps its key; entries that
// temporarily match neither peer are parked in the owner's foreign buffer and offered
// again at later meetings (never dropped).
//
// Every invocation (including recursive ones) is recorded as one kExchange message --
// the cost metric `e` of Sec. 5.1.

#pragma once

#include <cstdint>

#include "core/config.h"
#include "core/grid.h"
#include "core/split_policy.h"
#include "obs/metrics.h"
#include "sim/online_model.h"
#include "util/rng.h"

namespace pgrid {

/// Executes the construction algorithm against a Grid.
class ExchangeEngine {
 public:
  /// `grid`, `rng` must outlive the engine. `online` may be null (everyone online);
  /// when set, recursive exchange targets are skipped while offline, as in Fig. 3.
  /// `split_policy` may refine (never widen) the maxl bound on specialization --
  /// see split_policy.h; null means the paper's plain maxl rule.
  ExchangeEngine(Grid* grid, const ExchangeConfig& config, Rng* rng,
                 const OnlineModel* online = nullptr,
                 const SplitPolicy* split_policy = nullptr);

  /// Runs one meeting between two distinct peers (the paper's exchange(a1, a2, 0)).
  void Exchange(PeerId a1, PeerId a2);

  /// Total exchange executions recorded so far (the paper's `e`).
  uint64_t num_exchanges() const {
    return grid_->stats().count(MessageType::kExchange);
  }

  const ExchangeConfig& config() const { return config_; }

 private:
  void ExchangeImpl(PeerId id1, PeerId id2, size_t depth);

  /// Level-lc reference cross-pollination: union both sets, each keeps a random
  /// refmax-subset.
  void CrossPollinateRefs(PeerState* a1, PeerState* a2, size_t level);

  /// Cases 2/3: `shorter` (whose path equals the common prefix) specializes with the
  /// complement of `longer`'s bit at level lc+1; installs mutual references.
  void SplitShorter(PeerState* shorter, PeerState* longer, size_t lc);

  /// Replication-balancing variant of cases 2/3: `shorter` adopts the partner's bit
  /// (joins its side) and inherits a sample of the partner's references at the new
  /// level. Triggered by SplitPolicy::PreferClone.
  void CloneShorter(PeerState* shorter, PeerState* longer, size_t lc);

  /// Replica meeting: leaf index merge, plus mutual buddy registration when the
  /// paths are final (at maxl).
  void MergeReplicas(PeerState* a1, PeerState* a2, bool record_buddies);

  /// Moves leaf index entries between the two peers so that each retained entry
  /// overlaps its holder's (possibly just-extended) path.
  void ReconcileData(PeerState* x, PeerState* y);

  bool IsOnline(PeerId p) const;

  /// True iff `a` may extend its path when meeting `partner` with common prefix
  /// length `lc`: always bounded by maxl, optionally further restricted by the
  /// split policy.
  bool MaySplit(const PeerState& a, const PeerState& partner, size_t lc) const;

  Grid* grid_;
  ExchangeConfig config_;
  Rng* rng_;
  const OnlineModel* online_;
  const SplitPolicy* split_policy_;

  // Cached registry instruments (owned by the grid; see docs/observability.md).
  obs::Counter* exchanges_;  // mirrors MessageStats kExchange exactly
  obs::Counter* splits_;
  obs::Counter* entries_moved_;  // mirrors MessageStats kDataTransfer (this engine)
  obs::Histogram* recursion_depth_;
};

}  // namespace pgrid
