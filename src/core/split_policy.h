// Split policies: when may a peer extend its path by another level?
//
// The paper bounds specialization with the global constant maxl, and remarks
// (Sec. 3) that "in practical applications, one possible indication that a path has
// reached maxl could be that the number of data items belonging to the key is
// falling below a certain threshold", and (Sec. 6) that supporting skewed data
// distributions requires taking the actual data distribution into account during
// construction. SplitPolicy turns that into a pluggable decision:
//
//  - DepthBoundPolicy:     the paper's maxl rule (default behaviour).
//  - DataThresholdPolicy:  split only while enough index entries live under the
//                          common path, with a hard depth cap. Under skewed keys
//                          this grows the trie deeper exactly where the data is,
//                          balancing per-peer storage load (the Sec. 6 extension).

#pragma once

#include <algorithm>
#include <cstddef>

#include "core/peer_state.h"

namespace pgrid {

/// Decides whether two peers whose paths agree up to `common_len` may introduce a
/// new level (exchange cases 1-3), and whether a shorter peer should *clone* toward
/// the partner's (data-dense) side instead of specializing to the complement.
class SplitPolicy {
 public:
  virtual ~SplitPolicy() = default;

  /// `a` is the peer that would extend its path; `partner` is the other side of the
  /// meeting. `common_len` is the length of the shared prefix that would be split.
  virtual bool MaySplit(const PeerState& a, const PeerState& partner,
                        size_t common_len) const = 0;

  /// Replication balancing (cases 2/3 only): when true, `shorter` adopts the
  /// partner's bit at level common_len+1 -- becoming another peer on the partner's
  /// side -- instead of taking the complement. The exchange algorithm's plain
  /// splitting allocates peers 50/50 per level regardless of where the data is;
  /// cloning shifts peer population toward data-dense regions so leaf loads
  /// balance under skew. Default: never clone (the paper's behaviour).
  virtual bool PreferClone(const PeerState& shorter, const PeerState& longer,
                           size_t common_len) const {
    (void)shorter;
    (void)longer;
    (void)common_len;
    return false;
  }
};

/// The paper's rule: split while the common prefix is shorter than maxl.
class DepthBoundPolicy : public SplitPolicy {
 public:
  explicit DepthBoundPolicy(size_t maxl) : maxl_(maxl) {}

  bool MaySplit(const PeerState& a, const PeerState& partner,
                size_t common_len) const override {
    (void)a;
    (void)partner;
    return common_len < maxl_;
  }

 private:
  size_t maxl_;
};

/// Data-aware rule: split while the meeting pair jointly indexes at least
/// `min_items` entries (so each side keeps a useful share), up to a hard depth cap.
/// With no data at all this behaves like DepthBoundPolicy(bootstrap_depth): the
/// structure still forms, it just refuses to over-specialize empty regions.
class DataThresholdPolicy : public SplitPolicy {
 public:
  /// `clone_imbalance` enables replication balancing: the shorter peer clones to
  /// the partner's side when, among its own entries that decide the new level, the
  /// partner's side holds more than `clone_imbalance` times the complement side's
  /// share. 0 disables cloning.
  DataThresholdPolicy(size_t min_items, size_t hard_cap, size_t bootstrap_depth = 1,
                      double clone_imbalance = 0.0)
      : min_items_(min_items),
        hard_cap_(hard_cap),
        bootstrap_depth_(bootstrap_depth),
        clone_imbalance_(clone_imbalance) {}

  bool MaySplit(const PeerState& a, const PeerState& partner,
                size_t common_len) const override {
    if (common_len >= hard_cap_) return false;
    if (common_len < bootstrap_depth_) return true;
    return a.index().size() + partner.index().size() >= min_items_;
  }

  bool PreferClone(const PeerState& shorter, const PeerState& longer,
                   size_t common_len) const override {
    if (clone_imbalance_ <= 0.0) return false;
    // The shorter peer still indexes both sides of the new level; count how its
    // entries fall relative to the partner's bit. (The partner's index only covers
    // its own side and cannot inform this decision.)
    const int partner_bit = longer.PathBit(common_len + 1);
    double partner_side = 0, complement_side = 0;
    shorter.index().ForEach([&](const IndexEntry& e) {
      if (e.key.length() <= common_len) return;
      if (e.key.bit(common_len) == partner_bit) {
        ++partner_side;
      } else {
        ++complement_side;
      }
    });
    return partner_side > clone_imbalance_ * std::max(1.0, complement_side);
  }

 private:
  size_t min_items_;
  size_t hard_cap_;
  size_t bootstrap_depth_;
  double clone_imbalance_;
};

}  // namespace pgrid
