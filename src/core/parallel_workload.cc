#include "core/parallel_workload.h"

#include <algorithm>
#include <vector>

#include "core/search.h"
#include "key/key_path.h"
#include "sim/message_stats.h"
#include "util/macros.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace pgrid {

ParallelQueryReport RunParallelQueries(Grid* grid, const OnlineModel* online,
                                       const ParallelQueryOptions& options) {
  PGRID_CHECK(grid != nullptr);
  PGRID_CHECK_GT(options.threads, 0u);
  PGRID_CHECK_GT(options.chunk_size, 0u);
  PGRID_CHECK_GT(options.key_length, 0u);

  Stopwatch watch;
  ParallelQueryReport report;
  report.queries = options.num_queries;
  if (options.num_queries == 0) return report;

  struct Chunk {
    uint64_t first = 0;  // global index of the chunk's first query
    uint64_t count = 0;
    MessageStats stats;
    uint64_t found = 0;
    uint64_t messages = 0;
  };
  const uint64_t num_chunks =
      (options.num_queries + options.chunk_size - 1) / options.chunk_size;
  std::vector<Chunk> chunks(num_chunks);
  for (uint64_t c = 0; c < num_chunks; ++c) {
    chunks[c].first = c * options.chunk_size;
    chunks[c].count =
        std::min<uint64_t>(options.chunk_size, options.num_queries - chunks[c].first);
  }

  obs::PhaseProfiler* prof = options.profiler;
  if (prof != nullptr) PGRID_CHECK(prof->lanes() >= options.threads);
  const int phase_chunk = prof != nullptr ? prof->RegisterPhase("query.chunk") : 0;

  ThreadPool pool(options.threads);
  pool.ParallelFor(chunks.size(), [&](size_t ci, size_t lane) {
    const uint64_t t_chunk = prof != nullptr ? prof->NowNs() : 0;
    Chunk& chunk = chunks[ci];
    // One engine per chunk: its Rng is reseeded per query with the query's own
    // counter-derived stream, and its kQuery accounting lands in the chunk shard.
    Rng rng(0);
    SearchEngine engine(grid, online, &rng);
    engine.set_stats_sink(&chunk.stats);
    for (uint64_t q = 0; q < chunk.count; ++q) {
      rng.Reseed(DeriveStreamSeed(options.seed, chunk.first + q));
      const KeyPath key = KeyPath::Random(&rng, options.key_length);
      std::optional<PeerId> start = engine.RandomOnlinePeer();
      if (!start.has_value()) continue;
      QueryResult result = engine.Query(*start, key);
      if (result.found) ++chunk.found;
      chunk.messages += result.messages;
    }
    if (prof != nullptr) {
      prof->Record(lane, phase_chunk, t_chunk, prof->NowNs() - t_chunk, ci);
    }
  });

  // Ordered barrier merge: the grid ledger sees chunk shards in chunk order.
  for (Chunk& chunk : chunks) {
    grid->stats().MergeFrom(chunk.stats);
    report.found += chunk.found;
    report.messages += chunk.messages;
  }
  report.seconds = watch.ElapsedSeconds();
  report.queries_per_second =
      report.seconds > 0.0
          ? static_cast<double>(report.queries) / report.seconds
          : 0.0;
  if (prof != nullptr) {
    // The pool join gives the happens-before edge; lanes are quiescent here.
    report.lane_busy_ns.assign(options.threads, 0);
    uint64_t busy = 0;
    for (size_t lane = 0; lane < options.threads; ++lane) {
      for (const obs::PhaseProfiler::Event& e : prof->DrainLane(lane)) {
        report.lane_busy_ns[lane] += e.dur_ns;
      }
      busy += report.lane_busy_ns[lane];
    }
    const double wall_ns = report.seconds * 1e9;
    report.utilization =
        wall_ns > 0.0 ? static_cast<double>(busy) /
                            (static_cast<double>(options.threads) * wall_ns)
                      : 0.0;
  }
  return report;
}

}  // namespace pgrid
