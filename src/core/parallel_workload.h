// Multi-threaded read-only query workloads with deterministic accounting.
//
// Searches never mutate peer state, so a query workload parallelizes trivially --
// the work is making the *accounting* deterministic. Three ingredients:
//
//   1. Counter-derived streams. Query i always runs on
//      Rng(DeriveStreamSeed(seed, i)): its key, entry point, and routing decisions
//      are a function of (seed, i), independent of which thread runs it when.
//   2. Fixed chunking. Queries are grouped into chunks of `chunk_size` (never
//      derived from the thread count); each chunk runs on its own SearchEngine
//      whose kQuery accounting is redirected to a private MessageStats shard
//      (SearchEngine::set_stats_sink).
//   3. Ordered merge. After the join, chunk shards fold into the grid ledger in
//      chunk order, so `search.messages == stats().count(kQuery)` holds afterwards
//      exactly as in a serial run.
//
// Per-peer load counters (Grid::NoteServed) are relaxed atomics recorded in place:
// sums are exact and thread-count independent, which is all the load-balance
// statistics consume.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/grid.h"
#include "obs/profiler.h"
#include "sim/online_model.h"

namespace pgrid {

struct ParallelQueryOptions {
  /// Worker threads (>= 1). Affects wall-clock only, never found/message counts.
  size_t threads = 1;

  /// Queries to issue.
  uint64_t num_queries = 0;

  /// Bits per random query key.
  size_t key_length = 8;

  /// Master seed; query i draws from stream DeriveStreamSeed(seed, i).
  uint64_t seed = 1;

  /// Queries per accounting shard. Part of the deterministic layout; must never
  /// be derived from the thread count.
  size_t chunk_size = 64;

  /// Optional phase profiler with at least `threads` lanes: each chunk records
  /// its execution time on its lane, and the report's lane_busy_ns/utilization
  /// are filled from the drained buffers. Null = profiling off (the default);
  /// never affects found/message counts.
  obs::PhaseProfiler* profiler = nullptr;
};

/// Aggregate outcome of one parallel query run.
struct ParallelQueryReport {
  uint64_t queries = 0;
  uint64_t found = 0;
  uint64_t messages = 0;  ///< kQuery messages, also merged into the grid ledger
  double seconds = 0.0;
  double queries_per_second = 0.0;

  /// Per-lane query execution time (size = threads); empty without a profiler.
  std::vector<uint64_t> lane_busy_ns;
  /// sum(lane_busy_ns) / (threads * wall time); 0 without a profiler.
  double utilization = 0.0;
};

/// Fans `options.num_queries` random-key queries out over `options.threads`
/// threads. `online` may be null (everyone online). Found/message totals are a
/// pure function of (grid state, options.seed); see file comment.
ParallelQueryReport RunParallelQueries(Grid* grid, const OnlineModel* online,
                                       const ParallelQueryOptions& options);

}  // namespace pgrid
