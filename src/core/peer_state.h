// Per-peer P-Grid state (Sec. 2).
//
// Every peer maintains the sequence (p1, R1)(p2, R2)...(pn, Rn): its path p1...pn and,
// for each level i, a set Ri of references to peers whose path agrees on the first
// i-1 bits and has the complementary bit at position i. In addition a peer keeps the
// leaf-level index D (references to data items under its path), the data items it
// physically stores, and the buddy list of known same-path replicas.
//
// Levels are 1-indexed throughout, matching the paper: RefsAt(1) routes on the first
// bit, RefsAt(depth()) on the last.
//
// The containers are chosen for per-peer footprint at community sizes in the
// millions: the reference table is one pooled block (core/packed_refs.h), the
// buddy list a tight 1.25x-growth array (util/tight_vec.h), and reference
// lists are exposed as read-only spans over the pooled storage.

#pragma once

#include <cstddef>
#include <vector>

#include "core/packed_refs.h"
#include "key/key_path.h"
#include "sim/types.h"
#include "storage/data_store.h"
#include "storage/leaf_index.h"
#include "util/span.h"
#include "util/tight_vec.h"

namespace pgrid {

/// Complete protocol state of one peer.
class PeerState {
 public:
  explicit PeerState(PeerId id) : id_(id) {}

  PeerId id() const { return id_; }

  /// The path this peer is responsible for. Empty means the whole key space.
  const KeyPath& path() const { return path_; }

  /// Current path length n.
  size_t depth() const { return path_.length(); }

  /// Bit p_level of the path, 1-indexed. Requires 1 <= level <= depth().
  int PathBit(size_t level) const;

  /// References R_level, 1-indexed, as a read-only view into the pooled table.
  /// Requires 1 <= level <= depth(). Invalidated by any mutation of this peer's
  /// references; copy (ToVector) before mutating.
  Span<PeerId> RefsAt(size_t level) const;

  /// Replaces R_level wholesale.
  void SetRefsAt(size_t level, std::vector<PeerId> refs);

  /// Adds `peer` to R_level if not already present. Returns true if added.
  bool AddRefAt(size_t level, PeerId peer);

  /// Removes every occurrence of `peer` from R_level. Returns the number removed.
  size_t RemoveRefAt(size_t level, PeerId peer);

  /// Extends the path by one bit, creating an (initially empty) reference level.
  /// Paths only ever grow; references installed earlier therefore stay prefix-valid.
  void AppendPathBit(int bit);

  /// Known same-path replicas discovered during construction (Sec. 3, update
  /// strategy 3). Deduplicated; never contains this peer itself.
  Span<PeerId> buddies() const { return Span<PeerId>(buddies_.begin(), buddies_.size()); }

  /// Adds `peer` to the buddy list if absent. With max_buddies > 0 the list is
  /// capped: once full, further additions are refused (0 keeps the historical
  /// unbounded behavior). Returns true if added.
  bool AddBuddy(PeerId peer, size_t max_buddies = 0);
  void ClearBuddies() { buddies_.clear(); }

  /// Leaf-level index D: references to data items under this peer's path.
  LeafIndex& index() { return index_; }
  const LeafIndex& index() const { return index_; }

  /// Data items this peer physically stores (it is the `holder` of their entries).
  DataStore& store() { return store_; }
  const DataStore& store() const { return store_; }

  /// Index entries this peer currently holds although their keys do not overlap its
  /// path (they could not yet be handed to a matching peer). Drained opportunistically
  /// during later exchanges; never silently dropped.
  TightVec<IndexEntry>& foreign_entries() { return foreign_; }
  const TightVec<IndexEntry>& foreign_entries() const { return foreign_; }

  /// Total routing references over all levels (storage-cost metric of Sec. 6).
  size_t TotalRefs() const { return refs_.total(); }

  /// Approximate heap bytes owned by this peer's protocol state: path words,
  /// reference lists, buddy list, leaf index, data store, and foreign buffer,
  /// all counted at container capacity. Excludes sizeof(*this) so Grid can sum
  /// footprints without double counting (Sec. 6's storage cost in bytes).
  size_t ApproxMemoryBytes() const;

 private:
  PeerId id_;
  KeyPath path_;
  PackedRefs refs_;  // level i (0-indexed) holds R_{i+1}
  TightVec<PeerId> buddies_;
  LeafIndex index_;
  DataStore store_;
  TightVec<IndexEntry> foreign_;
};

/// True iff a peer with responsibility `path` is (co-)responsible for `key`: their
/// intervals overlap, i.e. one is a prefix of the other.
inline bool PathCoversKey(const KeyPath& path, const KeyPath& key) {
  return PathsOverlap(path, key);
}

}  // namespace pgrid
