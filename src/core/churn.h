// Dynamic membership: joins, crashes, graceful departures (Sec. 6 extension:
// "the structures have to continuously adapt").
//
// The paper evaluates a community of fixed size with probabilistic availability.
// ChurnDriver extends the simulation with population dynamics:
//  - join:           a fresh peer (empty path) enters and integrates through
//                    ordinary exchanges -- no bootstrap protocol is needed, which is
//                    exactly the self-organization claim of the paper;
//  - crash:          a peer disappears forever (pinned offline); its state is lost;
//  - graceful leave: a departing peer first hands its leaf index entries to a live
//                    co-responsible peer (buddies preferred), then disappears.
//
// Combined with ExchangeConfig::prune_unreachable_refs, continued exchanges act as
// the repair process: dead references get flushed, joiners acquire paths and enter
// reference sets, and search reliability recovers. The AB5 benchmark ablates this.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/exchange.h"
#include "core/grid.h"
#include "sim/meeting_scheduler.h"
#include "sim/online_model.h"
#include "util/rng.h"

namespace pgrid {

/// Population dynamics per round.
struct ChurnConfig {
  /// Fraction of live peers that crash each round.
  double crash_fraction = 0.02;

  /// Fraction of live peers that leave gracefully each round.
  double leave_fraction = 0.0;

  /// New peers per round, as a fraction of the current live population. Bounded
  /// at 1: the population can at most double per round, which keeps joiner
  /// integration (exchanges with established peers) from being swamped by a
  /// majority of empty-path peers meeting each other.
  double join_fraction = 0.02;

  /// Exchanges driven between the membership events of consecutive rounds.
  size_t meetings_per_round = 1000;

  /// Online probability assigned to joining peers.
  double join_online_prob = 1.0;

  Status Validate() const {
    if (crash_fraction < 0 || crash_fraction > 1 || leave_fraction < 0 ||
        leave_fraction > 1 || join_fraction < 0 || join_fraction > 1) {
      return Status::InvalidArgument("churn fractions out of range");
    }
    return Status::OK();
  }
};

/// Outcome of one churn round.
struct ChurnRound {
  size_t crashed = 0;
  size_t left_gracefully = 0;
  size_t joined = 0;
  size_t live = 0;
  uint64_t meetings = 0;
  uint64_t handover_entries = 0;  ///< entries rescued by graceful leavers
};

/// Drives population dynamics over a grid.
class ChurnDriver {
 public:
  /// All pointers must outlive the driver. `online` is required: departures are
  /// modelled by pinning peers offline there.
  ChurnDriver(Grid* grid, ExchangeEngine* exchange, MeetingScheduler* scheduler,
              OnlineModel* online, Rng* rng);

  /// Executes one round: crashes, graceful departures, joins, then meetings
  /// between live peers.
  ChurnRound Round(const ChurnConfig& config);

  /// Removes one specific peer outside the round machinery: graceful departures
  /// hand their leaf entries to a live co-responsible peer (buddies preferred)
  /// exactly as in Round. The peer must currently be live. Returns the number of
  /// entries handed over (always 0 for crashes).
  uint64_t Depart(PeerId peer, bool graceful) { return Retire(peer, graceful); }

  /// Brings a previously departed peer back: clears its dead bit and restores
  /// it to the online model's probabilistic regime. The caller is responsible
  /// for having reinstalled the peer's state (e.g. recovered from durable
  /// storage, see storage/persist.h). The peer must currently be dead.
  void Revive(PeerId peer);

  /// Adds `count` fresh peers (empty paths) in one batched grow, each online
  /// with probability `online_prob`. The macro `massjoin` scenario step uses
  /// this instead of Round(): just the membership event -- no crashes, no
  /// leaves, no meetings. Returns the id of the first joiner (== the previous
  /// grid size; the ids are contiguous).
  PeerId Join(size_t count, double online_prob);

  /// Restricts who may inherit a graceful leaver's entries: the handover only
  /// considers heirs for which `fn(leaver, heir)` returns true (null = anyone,
  /// the historical behaviour). The scenario runner models partitions with it:
  /// a leaver cannot hand entries to a peer it cannot reach.
  void set_heir_filter(std::function<bool(PeerId leaver, PeerId heir)> fn) {
    heir_filter_ = std::move(fn);
  }

  bool IsDead(PeerId peer) const { return dead_[peer] != 0; }
  size_t live_count() const { return live_count_; }

  /// Liveness mask indexed by PeerId (non-zero = dead). The repair-convergence
  /// invariant checks take this to scope "every live peer has live references"
  /// to the actual survivors.
  const std::vector<uint8_t>& dead_mask() const { return dead_; }

  /// Ids of all live peers.
  std::vector<PeerId> LivePeers() const;

  /// Picks a uniformly random live peer.
  PeerId RandomLivePeer();

 private:
  /// Marks a peer dead, optionally handing its index entries to a live
  /// co-responsible peer first. Returns the number of entries handed over.
  uint64_t Retire(PeerId peer, bool graceful);

  Grid* grid_;
  ExchangeEngine* exchange_;
  MeetingScheduler* scheduler_;
  OnlineModel* online_;
  Rng* rng_;
  std::function<bool(PeerId, PeerId)> heir_filter_;
  std::vector<uint8_t> dead_;
  size_t live_count_;
};

}  // namespace pgrid
