// Structural statistics and invariant checks over a built grid (Sec. 5 metrics).

#pragma once

#include <cstddef>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/grid.h"
#include "key/key_path.h"
#include "util/status.h"

namespace pgrid {

/// Read-only analyses of grid structure.
class GridStats {
 public:
  /// Histogram: path length -> number of peers.
  static std::map<size_t, size_t> PathLengthHistogram(const Grid& grid);

  /// Number of peers per distinct complete path.
  static std::unordered_map<KeyPath, size_t, KeyPathHash> ReplicaCounts(
      const Grid& grid);

  /// Histogram for Fig. 4: replication factor -> number of peers whose exact path is
  /// shared by that many peers (including themselves).
  static std::map<size_t, size_t> ReplicaHistogram(const Grid& grid);

  /// Average replication factor over peers (the paper reports 19.46 at N=20000).
  static double AverageReplicationFactor(const Grid& grid);

  /// All peers co-responsible for `key` (path overlaps the key). This is the ground
  /// truth replica set for the Fig. 5 / table 6 experiments.
  static std::vector<PeerId> ReplicasOf(const Grid& grid, const KeyPath& key);

  /// Mean routing-table size (total references per peer): the storage metric of
  /// Sec. 6.
  static double AverageTotalRefs(const Grid& grid);

  /// Largest routing-table size over peers.
  static size_t MaxTotalRefs(const Grid& grid);

  /// Summary of the per-peer served-message distribution (Grid::query_load()).
  struct LoadProfile {
    double mean = 0;
    uint64_t max = 0;
    uint64_t p50 = 0;
    uint64_t p99 = 0;
    double imbalance = 0;  ///< max / mean (1.0 = perfectly even)
    size_t idle_peers = 0; ///< peers that served nothing
  };

  /// Computes the load profile of the messages served so far. The paper claims
  /// communication cost scales "equally for all peers"; this quantifies it.
  static LoadProfile QueryLoadProfile(const Grid& grid);

  /// Verifies structural invariants of the access structure:
  ///  - every peer's reference list count equals its path length;
  ///  - no level holds more than config.refmax references;
  ///  - no path exceeds config.maxl;
  ///  - the reference property of Sec. 2: r in refs(i, a) implies
  ///    prefix(i, peer(r)) == prefix(i-1, a) + complement(p_i);
  ///  - no reference points to the peer itself;
  ///  - buddy lists only contain peers with the identical path.
  /// Returns the first violation found, or OK.
  static Status CheckInvariants(const Grid& grid, const ExchangeConfig& config);
};

}  // namespace pgrid
