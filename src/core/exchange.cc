#include "core/exchange.h"

#include <algorithm>

#include "util/macros.h"

namespace pgrid {

namespace {

/// Returns a copy of `refs` without `exclude`.
std::vector<PeerId> Without(Span<PeerId> refs, PeerId exclude) {
  std::vector<PeerId> out;
  out.reserve(refs.size());
  for (PeerId r : refs) {
    if (r != exclude) out.push_back(r);
  }
  return out;
}

/// Deduplicating union of two reference lists.
std::vector<PeerId> Union(Span<PeerId> a, Span<PeerId> b) {
  std::vector<PeerId> out = a.ToVector();
  for (PeerId r : b) {
    if (std::find(out.begin(), out.end(), r) == out.end()) out.push_back(r);
  }
  return out;
}

}  // namespace

ExchangeEngine::ExchangeEngine(Grid* grid, const ExchangeConfig& config, Rng* rng,
                               const OnlineModel* online,
                               const SplitPolicy* split_policy)
    : grid_(grid),
      config_(config),
      rng_(rng),
      online_(online),
      split_policy_(split_policy) {
  PGRID_CHECK(grid != nullptr && rng != nullptr);
  PGRID_CHECK(config.Validate().ok());
  obs::MetricsRegistry& m = grid->metrics();
  exchanges_ = m.GetCounter("exchange.count");
  splits_ = m.GetCounter("exchange.splits");
  entries_moved_ = m.GetCounter("exchange.entries_moved");
  recursion_depth_ = m.GetHistogram("exchange.recursion_depth", obs::CountBounds());
  PGRID_CHECK(exchanges_ && splits_ && entries_moved_ && recursion_depth_);
}

bool ExchangeEngine::IsOnline(PeerId p, Rng* rng) const {
  return online_ == nullptr || online_->IsOnline(p, rng);
}

bool ExchangeEngine::MaySplit(const PeerState& a, const PeerState& partner,
                              size_t lc) const {
  if (lc >= config_.maxl) return false;
  return split_policy_ == nullptr || split_policy_->MaySplit(a, partner, lc);
}

void ExchangeEngine::Exchange(PeerId a1, PeerId a2) {
  // Sequential entry point: the engine's own Rng, the grid's ledger, inline
  // recursion. Path growth accumulates in the shard and is applied before
  // returning, so callers observe the same AveragePathLength as ever.
  ExchangeShard shard;
  shard.rng = rng_;
  shard.stats = &grid_->stats();
  ExchangeImpl(a1, a2, 0, &shard);
  if (shard.path_bits > 0) grid_->NotePathGrowth(shard.path_bits);
}

void ExchangeEngine::ExchangeSharded(PeerId a1, PeerId a2, uint32_t depth,
                                     ExchangeShard* shard) {
  PGRID_CHECK(shard != nullptr && shard->rng != nullptr && shard->stats != nullptr);
  ExchangeImpl(a1, a2, depth, shard);
}

void ExchangeEngine::ExchangeImpl(PeerId id1, PeerId id2, size_t depth,
                                  ExchangeShard* shard) {
  if (id1 == id2) return;
  shard->stats->Record(MessageType::kExchange);
  exchanges_->Increment();
  recursion_depth_->Record(depth);
  obs::TraceRecorder* trace = grid_->trace();
  obs::TraceSpan span(depth == 0 ? trace : nullptr, "exchange");
  if (trace != nullptr && depth > 0) {
    // Recursive invocations are point events; the enclosing depth-0 span owns the
    // wall-clock duration of the whole meeting tree.
    trace->Event(0, "exchange.recurse",
                 "a=" + std::to_string(id1) + " b=" + std::to_string(id2),
                 static_cast<uint32_t>(depth));
  }

  PeerState& a1 = grid_->peer(id1);
  PeerState& a2 = grid_->peer(id2);

  const size_t lc = a1.path().CommonPrefixLength(a2.path());
  if (lc > 0) CrossPollinateRefs(&a1, &a2, lc, shard);

  const size_t l1 = a1.depth() - lc;
  const size_t l2 = a2.depth() - lc;

  if (l1 == 0 && l2 == 0 && MaySplit(a1, a2, lc)) {
    // Case 1: identical paths below the split bound -- introduce a new level.
    a1.AppendPathBit(0);
    a2.AppendPathBit(1);
    shard->path_bits += 2;
    splits_->Increment(2);
    a1.SetRefsAt(lc + 1, {id2});
    a2.SetRefsAt(lc + 1, {id1});
    if (config_.manage_data) ReconcileData(&a1, &a2, shard);
  } else if (l1 == 0 && l2 > 0 && MaySplit(a1, a2, lc)) {
    // Case 2: a1's path is a proper prefix of a2's -- a1 specializes (or clones to
    // the data-dense side under replication balancing).
    if (split_policy_ != nullptr && split_policy_->PreferClone(a1, a2, lc)) {
      CloneShorter(&a1, &a2, lc, shard);
    } else {
      SplitShorter(&a1, &a2, lc, shard);
    }
    if (config_.manage_data) ReconcileData(&a1, &a2, shard);
  } else if (l1 > 0 && l2 == 0 && MaySplit(a2, a1, lc)) {
    // Case 3: symmetric to case 2.
    if (split_policy_ != nullptr && split_policy_->PreferClone(a2, a1, lc)) {
      CloneShorter(&a2, &a1, lc, shard);
    } else {
      SplitShorter(&a2, &a1, lc, shard);
    }
    if (config_.manage_data) ReconcileData(&a1, &a2, shard);
  } else if (l1 > 0 && l2 > 0 && depth < config_.recmax) {
    // Case 4: paths diverge -- forward each peer to the other's references on the
    // matching side and recurse.
    std::vector<PeerId> refs1 = Without(a1.RefsAt(lc + 1), id2);
    std::vector<PeerId> refs2 = Without(a2.RefsAt(lc + 1), id1);
    Rng* rng = shard->rng;
    if (config_.recursion_fanout > 0) {
      refs1 = rng->SampleWithoutReplacement(std::move(refs1), config_.recursion_fanout);
      refs2 = rng->SampleWithoutReplacement(std::move(refs2), config_.recursion_fanout);
    }
    if (shard->deferred != nullptr) {
      // Sharded execution: recursion targets are third peers a concurrent meeting
      // may own, so the recursive calls are captured for the driver to schedule in
      // a later conflict-free wave. Online filtering stays on this shard's stream,
      // keeping the capture deterministic.
      for (PeerId r1 : refs1) {
        if (IsOnline(r1, rng)) {
          shard->deferred->push_back({id2, r1, static_cast<uint32_t>(depth + 1)});
        }
      }
      for (PeerId r2 : refs2) {
        if (IsOnline(r2, rng)) {
          shard->deferred->push_back({id1, r2, static_cast<uint32_t>(depth + 1)});
        }
      }
    } else {
      // NOTE: a1/a2 may specialize further inside these recursive calls; peers are
      // addressed by id, and Grid storage is stable, so this is safe.
      for (PeerId r1 : refs1) {
        if (IsOnline(r1, rng)) ExchangeImpl(id2, r1, depth + 1, shard);
      }
      for (PeerId r2 : refs2) {
        if (IsOnline(r2, rng)) ExchangeImpl(id1, r2, depth + 1, shard);
      }
    }
  } else if (l1 == 0 && l2 == 0 && config_.manage_data) {
    // Replica case: identical paths that may not split (at maxl, or refused by the
    // split policy). Merge leaf indexes either way; register buddies only at maxl,
    // where paths are final (a policy-refused pair may still specialize later once
    // it accumulates data, which would invalidate the buddy relation).
    MergeReplicas(&a1, &a2, /*record_buddies=*/lc >= config_.maxl, shard);
  }
}

void ExchangeEngine::CrossPollinateRefs(PeerState* a1, PeerState* a2, size_t level,
                                        ExchangeShard* shard) {
  Rng* rng = shard->rng;
  std::vector<PeerId> common = Union(a1->RefsAt(level), a2->RefsAt(level));
  if (config_.prune_unreachable_refs && online_ != nullptr) {
    // Gossip-time failure detection: drop targets that cannot be reached right
    // now. Temporarily offline peers lose some incoming references and regain
    // them through later exchanges; permanently dead ones are flushed for good.
    std::erase_if(common, [this, rng](PeerId r) { return !IsOnline(r, rng); });
  }
  a1->SetRefsAt(level, rng->SampleWithoutReplacement(common, config_.refmax));
  a2->SetRefsAt(level, rng->SampleWithoutReplacement(std::move(common), config_.refmax));
}

void ExchangeEngine::SplitShorter(PeerState* shorter, PeerState* longer, size_t lc,
                                  ExchangeShard* shard) {
  PGRID_CHECK_EQ(shorter->depth(), lc);
  PGRID_CHECK_GT(longer->depth(), lc);
  const int bit = ComplementBit(longer->PathBit(lc + 1));
  shorter->AppendPathBit(bit);
  shard->path_bits += 1;
  splits_->Increment();
  shorter->SetRefsAt(lc + 1, {longer->id()});
  const PeerId self = shorter->id();
  std::vector<PeerId> refs = Union(Span<PeerId>(&self, 1), longer->RefsAt(lc + 1));
  longer->SetRefsAt(lc + 1, shard->rng->SampleWithoutReplacement(std::move(refs),
                                                                 config_.refmax));
}

void ExchangeEngine::CloneShorter(PeerState* shorter, PeerState* longer, size_t lc,
                                  ExchangeShard* shard) {
  PGRID_CHECK_EQ(shorter->depth(), lc);
  PGRID_CHECK_GT(longer->depth(), lc);
  // Adopt the partner's bit: the shorter peer joins the data-dense side. Its
  // references at the new level must point to the complement of its own bit, which
  // is exactly what the partner's references at that level do.
  const int bit = longer->PathBit(lc + 1);
  shorter->AppendPathBit(bit);
  shard->path_bits += 1;
  splits_->Increment();
  shorter->SetRefsAt(lc + 1, shard->rng->SampleWithoutReplacement(
                                 longer->RefsAt(lc + 1).ToVector(), config_.refmax));
}

void ExchangeEngine::MergeReplicas(PeerState* a1, PeerState* a2, bool record_buddies,
                                   ExchangeShard* shard) {
  if (record_buddies) {
    a1->AddBuddy(a2->id(), config_.buddymax);
    a2->AddBuddy(a1->id(), config_.buddymax);
    // Replicas also learn each other's buddies (transitive closure over
    // meetings). Each loop walks one peer's list while inserting into the
    // other's, so the span being iterated is never reallocated mid-walk; the
    // second loop deliberately sees what the first one just added.
    for (PeerId b : a2->buddies()) a1->AddBuddy(b, config_.buddymax);
    for (PeerId b : a1->buddies()) a2->AddBuddy(b, config_.buddymax);
  }
  size_t moved = a1->index().MergeFrom(a2->index());
  moved += a2->index().MergeFrom(a1->index());
  if (moved > 0) {
    shard->stats->Record(MessageType::kDataTransfer, moved);
    entries_moved_->Increment(moved);
  }
}

void ExchangeEngine::ReconcileData(PeerState* x, PeerState* y, ExchangeShard* shard) {
  for (int round = 0; round < 2; ++round) {
    PeerState* from = round == 0 ? x : y;
    PeerState* to = round == 0 ? y : x;
    // Entries that stopped overlapping the (possibly just-extended) own path, plus
    // anything parked earlier, are offered to the partner.
    std::vector<IndexEntry> pending = from->index().ExtractNotMatching(from->path());
    for (IndexEntry& e : from->foreign_entries()) pending.push_back(std::move(e));
    from->foreign_entries().clear();
    size_t moved = 0;
    for (IndexEntry& e : pending) {
      if (PathsOverlap(to->path(), e.key)) {
        if (to->index().InsertOrRefresh(e)) ++moved;
      } else if (PathsOverlap(from->path(), e.key)) {
        from->index().InsertOrRefresh(e);
      } else {
        from->foreign_entries().push_back(std::move(e));
      }
    }
    if (moved > 0) {
      shard->stats->Record(MessageType::kDataTransfer, moved);
      entries_moved_->Increment(moved);
    }
  }
}

}  // namespace pgrid
