// Multi-threaded grid construction with a deterministic result.
//
// The sequential GridBuilder interleaves meeting scheduling, exchange execution,
// and ledger accounting on one RNG stream, so its result is a function of the seed
// but inherently serial. This builder restructures the same workload so meetings
// run concurrently while the final grid stays a pure function of (seed,
// batch_size) -- in particular, independent of the thread count:
//
//   1. Deterministic schedule. Each round draws `batch_size` meetings from the
//      master RNG, serially, before any execution. The schedule never depends on
//      how the previous batch was executed, only on how many meetings it held.
//   2. Conflict-free waves. A greedy in-order pass claims both endpoints of each
//      work item; items whose endpoints are both unclaimed form the wave, the rest
//      keep their order for the next wave. Within a wave no peer appears twice, and
//      the exchange cases outside recursion mutate only the two endpoint peers, so
//      wave items are data-race free by construction.
//   3. Per-slot streams. Wave slot i owns a persistent Rng seeded as stream i of a
//      value drawn once from the master (util/rng.h DeriveStreamSeed). The wave
//      partition -- and therefore the item -> slot assignment -- is computed
//      serially, so slot streams advance identically for every thread count.
//      Persistent streams also keep the hot path free of std::mt19937_64
//      re-seeding (~2us per fresh engine, comparable to a whole exchange).
//   4. Sharded execution. Slot i runs ExchangeEngine::ExchangeSharded against its
//      own stream, a private MessageStats shard, a private path-growth
//      accumulator, and a private deferred-recursion list (case-4 recursion
//      targets third peers, so it is captured, not executed inline).
//   5. Deterministic barrier merge. After the wave joins, shards fold into the
//      grid ledger in slot order and deferred children are appended to the
//      worklist in slot order. Every merge-visible quantity is ordered by the
//      schedule, not by thread timing.
//
// Convergence (average path length vs threshold) is checked at batch boundaries,
// after each batch has fully drained.
//
// With threads == 1 the identical wave machinery runs inline on the calling
// thread; 1-, 2-, and N-thread runs of the same seed produce byte-identical grids
// (tests/parallel_builder_test.cc snapshots them). The sequential GridBuilder
// remains the bit-exact legacy path for existing single-threaded experiments.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/build_profile.h"
#include "core/exchange.h"
#include "core/grid.h"
#include "core/grid_builder.h"
#include "obs/profiler.h"
#include "sim/meeting_scheduler.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pgrid {

struct ParallelBuildOptions {
  /// Worker threads (>= 1). Affects wall-clock only, never the result.
  size_t threads = 1;

  /// Meetings drawn per round. Part of the deterministic schedule: changing it
  /// changes the result (convergence is checked at batch boundaries). It must
  /// never be derived from the thread count.
  size_t batch_size = 256;

  /// Collect a per-wave BuildProfile (core/build_profile.h). Off by default:
  /// the profiled run times every wave and every exchange, which is cheap
  /// (lane-local buffers, no atomics) but not free. Never affects the result.
  bool profile = false;
};

/// Drives grid construction over a worker pool. The engine must have been created
/// on the same grid; the master Rng seeds the schedule and all slot streams.
class ParallelGridBuilder {
 public:
  ParallelGridBuilder(Grid* grid, ExchangeEngine* exchange,
                      MeetingScheduler* scheduler, Rng* master,
                      const ParallelBuildOptions& options);

  /// Runs until grid->AveragePathLength() >= target_avg_depth, or until
  /// `max_meetings` top-level meetings have been executed. Exchange counts are
  /// measured relative to the start of this call.
  BuildReport BuildToAverageDepth(double target_avg_depth, uint64_t max_meetings);

  /// Convenience: threshold as a fraction of maxl (the paper uses 0.99).
  BuildReport BuildToFractionOfMaxDepth(double fraction, uint64_t max_meetings);

  const ParallelBuildOptions& options() const { return options_; }

  /// The utilization profile accumulated so far, or null when options.profile
  /// is false. Accumulates across BuildTo* calls on the same builder.
  const BuildProfile* profile() const { return profile_.get(); }

 private:
  /// One scheduled exchange: a meeting from the master schedule (depth 0) or a
  /// deferred case-4 recursion (depth > 0).
  struct WorkItem {
    PeerId a = 0;
    PeerId b = 0;
    uint32_t depth = 0;
  };

  /// Execution state of one wave slot: a persistent deterministic stream plus the
  /// shard sinks the slot's item records into. Heap-allocated so the slot vector
  /// can grow without moving live Rng state.
  struct Slot {
    explicit Slot(uint64_t seed) : rng(seed) {}
    Rng rng;
    MessageStats stats;
    uint64_t path_bits = 0;
    std::vector<PendingExchange> deferred;
  };

  /// Ensures slots_ covers indices [0, n).
  void EnsureSlots(size_t n);

  /// Executes `items` (one batch of top-level meetings) to completion, including
  /// all deferred recursion, merging shards into the grid at each wave barrier.
  void RunBatch(std::vector<WorkItem> items);

  Grid* grid_;
  ExchangeEngine* exchange_;
  MeetingScheduler* scheduler_;
  Rng* master_;
  ParallelBuildOptions options_;
  ThreadPool pool_;

  /// Base for slot-stream derivation, drawn from the master at construction.
  uint64_t stream_base_;
  std::vector<std::unique_ptr<Slot>> slots_;

  // Epoch-stamped endpoint claims for wave partitioning (index = PeerId). Sized
  // lazily to the grid, stamped with claim_epoch_ instead of cleared per wave.
  std::vector<uint64_t> claims_;
  uint64_t claim_epoch_ = 0;

  // Profiling state; all null / unused when options.profile is false. The
  // profiler's lane buffers collect per-exchange timings inside a wave and are
  // drained at the wave barrier into the current WaveProfile.
  std::unique_ptr<BuildProfile> profile_;
  std::unique_ptr<obs::PhaseProfiler> profiler_;
  int phase_exchange_ = 0;
  uint64_t batch_ordinal_ = 0;
  uint64_t wave_ordinal_ = 0;
};

}  // namespace pgrid
