// Multi-threaded grid construction with a deterministic result.
//
// The sequential GridBuilder interleaves meeting scheduling, exchange execution,
// and ledger accounting on one RNG stream, so its result is a function of the seed
// but inherently serial. This builder restructures the same workload so meetings
// run concurrently while the final grid stays a pure function of (seed,
// batch_size) -- in particular, independent of the thread count:
//
//   1. Deterministic schedule. Each round draws `batch_size` meetings from the
//      master RNG, serially, before any execution. The schedule never depends on
//      how the previous batch was executed, only on how many meetings it held.
//   2. Conflict-free waves by edge coloring. The batch's meetings are the edges
//      of a multigraph over peers; a serial Misra-Gries edge coloring
//      (core/wave_schedule.h) partitions them into color classes in which no
//      peer appears twice. Each class is a wave the pool executes with zero
//      claim traffic -- the conflict handling that used to run as a greedy
//      claim scan inside every wave (at a measured ~68% conflict rate) is now
//      precomputed, once per round, as a pure function of the item list.
//   3. Per-slot streams. Wave slot i owns a persistent Rng seeded as stream i of a
//      value drawn once from the master (util/rng.h DeriveStreamSeed). The wave
//      partition -- and therefore the item -> slot assignment -- is computed
//      serially, so slot streams advance identically for every thread count.
//      Persistent streams also keep the hot path free of std::mt19937_64
//      re-seeding (~2us per fresh engine, comparable to a whole exchange).
//   4. Sharded execution. Slot i runs ExchangeEngine::ExchangeSharded against its
//      own stream and a private deferred-recursion list (case-4 recursion
//      targets third peers, so it is captured, not executed inline), while
//      ledger accounting (message counts, path growth) lands in per-*lane*
//      shards -- purely additive, so lane assignment cannot affect the sums.
//   5. Deterministic merges. The wave barrier only gathers deferred children, in
//      slot order (their order feeds the next round's coloring, so it must be
//      schedule-determined). The commutative lane shards fold into the grid
//      ledger once per batch, in lane order -- O(threads) barrier work per
//      batch instead of O(slots) per wave.
//
// Convergence (average path length vs threshold) is checked at batch boundaries,
// after each batch has fully drained.
//
// With threads == 1 the identical wave machinery runs inline on the calling
// thread; 1-, 2-, and N-thread runs of the same seed produce byte-identical grids
// (tests/parallel_builder_test.cc snapshots them). The sequential GridBuilder
// remains the bit-exact legacy path for existing single-threaded experiments.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/build_profile.h"
#include "core/exchange.h"
#include "core/grid.h"
#include "core/grid_builder.h"
#include "core/wave_schedule.h"
#include "obs/profiler.h"
#include "sim/meeting_scheduler.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pgrid {

struct ParallelBuildOptions {
  /// Worker threads (>= 1). Affects wall-clock only, never the result.
  size_t threads = 1;

  /// Meetings drawn per round. Part of the deterministic schedule: changing it
  /// changes the result (convergence is checked at batch boundaries). It must
  /// never be derived from the thread count.
  size_t batch_size = 256;

  /// Collect a per-wave BuildProfile (core/build_profile.h). Off by default:
  /// the profiled run times every wave and every exchange, which is cheap
  /// (lane-local buffers, no atomics) but not free. Never affects the result.
  bool profile = false;
};

/// Drives grid construction over a worker pool. The engine must have been created
/// on the same grid; the master Rng seeds the schedule and all slot streams.
class ParallelGridBuilder {
 public:
  ParallelGridBuilder(Grid* grid, ExchangeEngine* exchange,
                      MeetingScheduler* scheduler, Rng* master,
                      const ParallelBuildOptions& options);

  /// Runs until grid->AveragePathLength() >= target_avg_depth, or until
  /// `max_meetings` top-level meetings have been executed. Exchange counts are
  /// measured relative to the start of this call.
  BuildReport BuildToAverageDepth(double target_avg_depth, uint64_t max_meetings);

  /// Convenience: threshold as a fraction of maxl (the paper uses 0.99).
  BuildReport BuildToFractionOfMaxDepth(double fraction, uint64_t max_meetings);

  /// Executes one externally supplied batch of meetings to completion (including
  /// all deferred recursion), through the same wave machinery as BuildTo*. The
  /// result is a pure function of the builder's stream state and the meeting
  /// list -- thread-count independent -- which is what lets the scenario runner
  /// (sim/scenario.h) route its per-step meetings through any thread count and
  /// still reproduce the serial digests. Meetings with a == b are skipped (the
  /// exchange algorithm is undefined on self-pairs).
  void RunMeetings(const std::vector<Meeting>& meetings);

  const ParallelBuildOptions& options() const { return options_; }

  /// The utilization profile accumulated so far, or null when options.profile
  /// is false. Accumulates across BuildTo* calls on the same builder.
  const BuildProfile* profile() const { return profile_.get(); }

 private:
  /// One scheduled exchange: a meeting from the master schedule (depth 0) or a
  /// deferred case-4 recursion (depth > 0).
  struct WorkItem {
    PeerId a = 0;
    PeerId b = 0;
    uint32_t depth = 0;
  };

  /// Deterministic state of one wave slot: a persistent stream plus the slot's
  /// recursion capture (gathered in slot order at the wave barrier, because the
  /// gather order feeds the next round's schedule). Heap-allocated so the slot
  /// vector can grow without moving live Rng state.
  struct Slot {
    explicit Slot(uint64_t seed) : rng(seed) {}
    Rng rng;
    std::vector<PendingExchange> deferred;
  };

  /// Additive ledger shard of one execution lane. Which lane runs which item is
  /// timing-dependent, but these sums are commutative, so the once-per-batch
  /// lane-order fold into the grid is deterministic regardless.
  struct Lane {
    MessageStats stats;
    uint64_t path_bits = 0;
  };

  /// Ensures slots_ covers indices [0, n).
  void EnsureSlots(size_t n);

  /// Executes `items` (one batch of top-level meetings) to completion, including
  /// all deferred recursion, then folds the lane shards into the grid ledger.
  void RunBatch(std::vector<WorkItem> items);

  Grid* grid_;
  ExchangeEngine* exchange_;
  MeetingScheduler* scheduler_;
  Rng* master_;
  ParallelBuildOptions options_;
  ThreadPool pool_;

  /// Base for slot-stream derivation, drawn from the master at construction.
  uint64_t stream_base_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<Lane> lanes_;

  /// The per-round conflict-free partition (scratch reused across rounds).
  WaveSchedule schedule_;

  // Profiling state; all null / unused when options.profile is false. The
  // profiler's lane buffers collect per-exchange timings inside a wave and are
  // drained at the wave barrier into the current WaveProfile.
  std::unique_ptr<BuildProfile> profile_;
  std::unique_ptr<obs::PhaseProfiler> profiler_;
  int phase_exchange_ = 0;
  uint64_t batch_ordinal_ = 0;
  uint64_t wave_ordinal_ = 0;
};

}  // namespace pgrid
