// Closed-form analysis of search performance (paper Sec. 4).
//
// Inputs: community size N, per-peer data capacity d_peer, reference size r, index
// space budget s_peer, online probability p. The paper derives
//   (1) the key length k needed to differentiate the data:  k >= log2(d_global / i_leaf)
//   (2) a feasibility constraint on N:    d_global / i_leaf * refmax <= N
//   (3) the search success probability:   (1 - (1 - p)^refmax)^k
// and instantiates them for a Gnutella-scale file-sharing community.

#pragma once

#include <cstddef>
#include <cstdint>

#include "util/result.h"

namespace pgrid {

/// Parameters of the Sec. 4 sizing model.
struct SizingInput {
  double d_global = 0;      ///< total number of data objects in the network
  double ref_bytes = 10;    ///< storage cost of one reference (paper: 10 bytes)
  double s_peer = 0;        ///< index storage each peer contributes, in bytes
  double i_leaf = 0;        ///< leaf-level data references kept per peer
  size_t refmax = 1;        ///< reference multiplicity per level
  double online_prob = 0.3; ///< probability a peer is online
};

/// Derived quantities of the sizing model.
struct SizingResult {
  double i_peer = 0;            ///< total references a peer can store (s_peer / r)
  size_t key_length = 0;        ///< minimal k satisfying eq. (1)
  double index_entries = 0;     ///< i_leaf + k * refmax (must be <= i_peer)
  bool storage_feasible = false;
  double min_peers = 0;         ///< eq. (2): minimal N supporting the replication
  double search_success = 0;    ///< eq. (3) at the derived k
};

/// Minimal key length k with 2^k >= d_global / i_leaf (eq. 1).
size_t MinKeyLength(double d_global, double i_leaf);

/// Minimal community size N with d_global / i_leaf * refmax <= N (eq. 2).
double MinPeers(double d_global, double i_leaf, size_t refmax);

/// Probability of a successful search over a depth-k grid when every peer is online
/// with probability p and refmax alternatives exist per level (eq. 3).
double SearchSuccessProbability(double online_prob, size_t refmax, size_t key_length);

/// Evaluates the full sizing model. InvalidArgument on nonsensical inputs
/// (non-positive d_global/i_leaf/s_peer/ref_bytes, refmax == 0, p outside [0, 1]).
Result<SizingResult> EvaluateSizing(const SizingInput& input);

/// The paper's worked example: 10^7 files, 10-byte references, 10^5 bytes of index
/// space per peer, i_leaf = 10^4 - 200, refmax = 20, p = 0.3. Expected results:
/// k = 10, success > 99%, min_peers ~ 20409.
SizingInput GnutellaExampleInput();

}  // namespace pgrid
