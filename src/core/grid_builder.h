// Drives grid construction: random pairwise meetings until convergence (Sec. 5.1).
//
// The paper considers a P-Grid constructed when the average path length over all
// peers reaches a threshold t (99% of maxl in the experiments). The builder draws
// meetings from a MeetingScheduler, runs the exchange algorithm for each, and checks
// the O(1) average-path-length counter after every meeting.

#pragma once

#include <cstdint>

#include "core/exchange.h"
#include "core/grid.h"
#include "sim/meeting_scheduler.h"
#include "util/rng.h"

namespace pgrid {

/// Summary of one construction run.
struct BuildReport {
  /// Top-level meetings executed (each triggers one exchange(a1, a2, 0)).
  uint64_t meetings = 0;

  /// Total exchange executions including recursive ones (the paper's `e`).
  uint64_t exchanges = 0;

  /// Average path length when the run stopped.
  double avg_path_length = 0.0;

  /// True iff the threshold was reached before max_meetings.
  bool converged = false;

  /// Wall-clock seconds spent.
  double seconds = 0.0;
};

/// Runs meetings until the average path length reaches a threshold.
class GridBuilder {
 public:
  GridBuilder(Grid* grid, ExchangeEngine* exchange, MeetingScheduler* scheduler,
              Rng* rng);

  /// Runs until grid->AveragePathLength() >= target_avg_depth, or until
  /// `max_meetings` meetings have been executed. Exchange counts are measured
  /// relative to the start of this call.
  BuildReport BuildToAverageDepth(double target_avg_depth, uint64_t max_meetings);

  /// Convenience: threshold as a fraction of maxl (the paper uses 0.99).
  BuildReport BuildToFractionOfMaxDepth(double fraction, uint64_t max_meetings);

 private:
  Grid* grid_;
  ExchangeEngine* exchange_;
  MeetingScheduler* scheduler_;
  Rng* rng_;
};

}  // namespace pgrid
