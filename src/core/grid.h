// The peer community and its shared simulation ledger.
//
// Grid owns all PeerState objects plus the MessageStats every protocol engine records
// into. It also maintains the running sum of path lengths so convergence checks
// (average path length vs threshold, Sec. 5.1) are O(1).

#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "core/peer_state.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/message_stats.h"
#include "sim/types.h"
#include "util/macros.h"

namespace pgrid {

/// A community of peers sharing one P-Grid.
class Grid {
 public:
  /// Creates `num_peers` peers, all initially responsible for the whole key space.
  explicit Grid(size_t num_peers) : query_load_(num_peers) {
    peers_.reserve(num_peers);
    for (size_t i = 0; i < num_peers; ++i) peers_.emplace_back(static_cast<PeerId>(i));
  }

  size_t size() const { return peers_.size(); }

  /// Adds a fresh peer (empty path, responsible for the whole key space) and
  /// returns its id. Supports dynamic membership: new peers integrate through
  /// ordinary exchanges. Do not call while an exchange or any parallel workload
  /// is executing.
  PeerId AddPeer() { return AddPeers(1); }

  /// Adds `count` fresh peers at once and returns the first new id. Mass joins
  /// (churn rounds, flash-crowd scenarios) must use this instead of repeated
  /// AddPeer(): the per-peer load counters are atomics, which are not movable,
  /// so every grow rebuilds that whole vector -- batched, the rebuild happens
  /// once per wave instead of once per joiner (O(n) vs O(n * count)).
  PeerId AddPeers(size_t count) {
    PGRID_CHECK_GT(count, 0u);
    const PeerId first = static_cast<PeerId>(peers_.size());
    peers_.reserve(peers_.size() + count);
    for (size_t i = 0; i < count; ++i) {
      peers_.emplace_back(static_cast<PeerId>(peers_.size()));
    }
    std::vector<std::atomic<uint64_t>> grown(peers_.size());
    for (size_t i = 0; i < query_load_.size(); ++i) {
      grown[i].store(query_load_[i].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    }
    query_load_ = std::move(grown);
    return first;
  }

  PeerState& peer(PeerId id) {
    PGRID_CHECK_LT(id, peers_.size());
    return peers_[id];
  }
  const PeerState& peer(PeerId id) const {
    PGRID_CHECK_LT(id, peers_.size());
    return peers_[id];
  }

  /// The simulation's message ledger. Not internally synchronized: parallel
  /// drivers record into per-item MessageStats shards and MergeFrom them here at
  /// batch barriers (see core/parallel_builder.h, core/parallel_workload.h).
  MessageStats& stats() { return stats_; }
  const MessageStats& stats() const { return stats_; }

  /// The unified metrics registry all engines record into. The protocol engines
  /// keep it in agreement with the MessageStats ledger (e.g. the counter
  /// "search.messages" equals stats().count(MessageType::kQuery)); see
  /// docs/observability.md for the metric-name mapping.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Optional per-operation trace sink for the engines. Null by default (tracing
  /// off); the recorder must outlive the grid's engines.
  obs::TraceRecorder* trace() const { return trace_; }
  void SetTraceRecorder(obs::TraceRecorder* recorder) { trace_ = recorder; }

  /// Called by the exchange engine whenever a path grows by one bit.
  void NotePathGrowth(size_t bits = 1) { total_path_bits_ += bits; }

  /// Inverse of NotePathGrowth, for the one operation that ever shrinks a
  /// path: a crash that wipes a peer's in-memory state (sim kill steps). The
  /// restart re-adds the recovered bits through NotePathGrowth.
  void NotePathLoss(size_t bits) {
    PGRID_CHECK_LE(bits, total_path_bits_);
    total_path_bits_ -= bits;
  }

  /// Called by the search/update engines when `peer` serves a message. Feeds the
  /// per-peer load statistics behind the paper's "scales ... equally for all
  /// peers" claim (see GridStats::QueryLoadProfile). The counter vector is sized
  /// with the community (constructor / AddPeer), so this hot path is branch-free,
  /// and the increment is a relaxed atomic so concurrent read-only workloads
  /// (core/parallel_workload.h) can serve from many threads at once.
  void NoteServed(PeerId peer) {
    PGRID_DCHECK(peer < query_load_.size());
    query_load_[peer].fetch_add(1, std::memory_order_relaxed);
  }

  /// Messages served per peer so far (index = PeerId; always size() entries).
  std::vector<uint64_t> query_load() const {
    std::vector<uint64_t> out(query_load_.size());
    for (size_t i = 0; i < query_load_.size(); ++i) {
      out[i] = query_load_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

  /// Zeroes the per-peer load counters.
  void ResetQueryLoad() {
    for (auto& c : query_load_) c.store(0, std::memory_order_relaxed);
  }

  /// Approximate heap footprint of the whole community: every peer's protocol
  /// state (paths, references, indexes, stores) plus the per-peer load
  /// counters, counted at container capacity. The metrics registry and trace
  /// sink are observability plumbing, not protocol state, and are excluded.
  /// Divide by size() for the per-peer storage cost the scaling benches report.
  size_t ApproxMemoryBytes() const {
    size_t bytes = peers_.capacity() * sizeof(PeerState);
    for (const PeerState& p : peers_) bytes += p.ApproxMemoryBytes();
    bytes += query_load_.capacity() * sizeof(std::atomic<uint64_t>);
    return bytes;
  }

  /// Average path length over all peers, in O(1).
  double AveragePathLength() const {
    return peers_.empty() ? 0.0
                          : static_cast<double>(total_path_bits_) /
                                static_cast<double>(peers_.size());
  }

  auto begin() { return peers_.begin(); }
  auto end() { return peers_.end(); }
  auto begin() const { return peers_.begin(); }
  auto end() const { return peers_.end(); }

 private:
  std::vector<PeerState> peers_;
  MessageStats stats_;
  obs::MetricsRegistry metrics_;
  obs::TraceRecorder* trace_ = nullptr;
  size_t total_path_bits_ = 0;
  std::vector<std::atomic<uint64_t>> query_load_;
};

}  // namespace pgrid
