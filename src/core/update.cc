#include "core/update.h"

#include "core/search.h"
#include "util/macros.h"

namespace pgrid {

const char* UpdateStrategyName(UpdateStrategy s) {
  switch (s) {
    case UpdateStrategy::kRepeatedDfs:
      return "dfs";
    case UpdateStrategy::kRepeatedDfsBuddies:
      return "dfs+buddies";
    case UpdateStrategy::kBreadthFirst:
      return "bfs";
  }
  return "?";
}

UpdateEngine::UpdateEngine(Grid* grid, const OnlineModel* online, Rng* rng)
    : grid_(grid), online_(online), rng_(rng) {
  PGRID_CHECK(grid != nullptr && rng != nullptr);
  obs::MetricsRegistry& m = grid->metrics();
  updates_ = m.GetCounter("update.runs");
  messages_ = m.GetCounter("update.messages");
  fanout_ = m.GetHistogram("update.fanout", obs::CountBounds());
  PGRID_CHECK(updates_ && messages_ && fanout_);
}

bool UpdateEngine::IsOnline(PeerId p) const {
  return online_ == nullptr || online_->IsOnline(p, rng_);
}

UpdateOutcome UpdateEngine::Propagate(const KeyPath& key, ItemId item, uint64_t version,
                                      UpdateStrategy strategy,
                                      const UpdateConfig& config) {
  UpdateOutcome out = Run(key, strategy, config);
  for (PeerId p : out.reached) {
    grid_->peer(p).index().ApplyVersion(item, version);
  }
  return out;
}

UpdateOutcome UpdateEngine::Probe(const KeyPath& key, UpdateStrategy strategy,
                                  const UpdateConfig& config) {
  return Run(key, strategy, config);
}

UpdateOutcome UpdateEngine::Run(const KeyPath& key, UpdateStrategy strategy,
                                const UpdateConfig& config) {
  PGRID_CHECK(config.Validate().ok());
  updates_->Increment();
  obs::TraceSpan span(grid_->trace(), "update.propagate");
  std::unordered_set<PeerId> reached;
  uint64_t messages = 0;
  SearchEngine search(grid_, online_, rng_);
  for (size_t rep = 0; rep < config.repetition; ++rep) {
    switch (strategy) {
      case UpdateStrategy::kRepeatedDfs:
        DfsPass(key, /*with_buddies=*/false, &reached, &messages);
        break;
      case UpdateStrategy::kRepeatedDfsBuddies:
        DfsPass(key, /*with_buddies=*/true, &reached, &messages);
        break;
      case UpdateStrategy::kBreadthFirst: {
        std::optional<PeerId> start = search.RandomOnlinePeer();
        if (start.has_value()) BfsPass(*start, key, 0, config.recbreadth, &reached,
                                       &messages);
        break;
      }
    }
  }
  UpdateOutcome out;
  out.messages = messages;
  out.reached.assign(reached.begin(), reached.end());
  fanout_->Record(out.reached.size());
  if (grid_->trace() != nullptr) {
    span.Event("update.reached",
               "replicas=" + std::to_string(out.reached.size()) +
                   " messages=" + std::to_string(out.messages));
  }
  return out;
}

void UpdateEngine::DfsPass(const KeyPath& key, bool with_buddies,
                           std::unordered_set<PeerId>* reached, uint64_t* messages) {
  SearchEngine search(grid_, online_, rng_);
  std::optional<PeerId> start = search.RandomOnlinePeer();
  if (!start.has_value()) return;
  QueryResult q = search.Query(*start, key);
  *messages += q.messages;
  if (!q.found) return;
  reached->insert(q.responder);
  if (!with_buddies) return;
  // The replica forwards the update to its known same-path buddies. One message per
  // online buddy; offline buddies are missed (they rejoin with stale state).
  for (PeerId b : grid_->peer(q.responder).buddies()) {
    if (reached->contains(b)) continue;
    if (!IsOnline(b)) continue;
    grid_->stats().Record(MessageType::kUpdate);
    messages_->Increment();
    ++*messages;
    reached->insert(b);
  }
}

void UpdateEngine::BfsPass(PeerId peer, const KeyPath& p, size_t consumed,
                           size_t recbreadth, std::unordered_set<PeerId>* reached,
                           uint64_t* messages) {
  const PeerState& a = grid_->peer(peer);
  const KeyPath rempath = a.path().SuffixFrom(consumed);
  const size_t lc = p.CommonPrefixLength(rempath);

  if (lc == rempath.length() && lc == p.length()) {
    // Exact coverage: `a` is a replica; nothing further to route.
    reached->insert(peer);
    return;
  }
  if (lc == p.length()) {
    // Query exhausted but the peer's path continues: `a` is a replica, and so is
    // every peer referenced at deeper levels (their intervals partition the rest of
    // the query's interval). Fan out into all deeper levels.
    reached->insert(peer);
    const KeyPath empty;
    for (size_t level = consumed + lc + 1; level <= a.depth(); ++level) {
      // consumed = level: targets only explore levels strictly below `level`, which
      // guarantees termination (consumed grows monotonically toward maxl).
      BfsFanOut(a.RefsAt(level), empty, level, recbreadth, reached, messages);
    }
    return;
  }
  if (lc == rempath.length()) {
    // Peer's path exhausted: `a` is a replica (the query refines its interval).
    reached->insert(peer);
    return;
  }
  // Divergence: forward to up to recbreadth references at the divergence level --
  // breadth-first, no early exit.
  const KeyPath querypath = p.SuffixFrom(lc);
  BfsFanOut(a.RefsAt(consumed + lc + 1), querypath, consumed + lc, recbreadth, reached,
            messages);
}

void UpdateEngine::BfsFanOut(Span<PeerId> refs, const KeyPath& querypath,
                             size_t consumed, size_t recbreadth,
                             std::unordered_set<PeerId>* reached, uint64_t* messages) {
  std::vector<PeerId> candidates = refs.ToVector();  // copy: we draw and remove
  size_t contacted = 0;
  while (!candidates.empty() && contacted < recbreadth) {
    PeerId r = rng_->TakeRandom(&candidates);
    if (!IsOnline(r)) continue;
    grid_->stats().Record(MessageType::kUpdate);
    messages_->Increment();
    grid_->NoteServed(r);
    ++*messages;
    ++contacted;
    BfsPass(r, querypath, consumed, recbreadth, reached, messages);
  }
}

}  // namespace pgrid
