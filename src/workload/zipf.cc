#include "workload/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace pgrid {

ZipfGenerator::ZipfGenerator(size_t n, double theta) : theta_(theta), cdf_(n) {
  PGRID_CHECK_GT(n, 0u);
  PGRID_CHECK_GE(theta, 0.0);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (double& c : cdf_) c /= sum;
}

size_t ZipfGenerator::Next(Rng* rng) const {
  PGRID_CHECK(rng != nullptr);
  const double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace pgrid
