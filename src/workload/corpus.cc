#include "workload/corpus.h"

#include "util/macros.h"

namespace pgrid {

std::vector<DataItem> MakeCorpus(size_t count, size_t num_peers,
                                 const KeyGenerator& gen, Rng* rng,
                                 std::vector<PeerId>* holders) {
  PGRID_CHECK(rng != nullptr && holders != nullptr);
  PGRID_CHECK_GT(num_peers, 0u);
  std::vector<DataItem> corpus;
  corpus.reserve(count);
  holders->clear();
  holders->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    DataItem item;
    item.id = static_cast<ItemId>(i + 1);
    item.key = gen.Next(rng);
    item.payload = "item-" + std::to_string(item.id);
    item.version = 1;
    corpus.push_back(std::move(item));
    holders->push_back(static_cast<PeerId>(rng->UniformIndex(num_peers)));
  }
  return corpus;
}

namespace {

IndexEntry EntryFor(const DataItem& item, PeerId holder) {
  IndexEntry e;
  e.holder = holder;
  e.item_id = item.id;
  e.key = item.key;
  e.version = item.version;
  return e;
}

}  // namespace

size_t SeedGridPerfectly(Grid* grid, const std::vector<DataItem>& corpus,
                         const std::vector<PeerId>& holders) {
  PGRID_CHECK(grid != nullptr);
  PGRID_CHECK_EQ(corpus.size(), holders.size());
  size_t installed = 0;
  for (size_t i = 0; i < corpus.size(); ++i) {
    grid->peer(holders[i]).store().Upsert(corpus[i]);
    const IndexEntry e = EntryFor(corpus[i], holders[i]);
    for (PeerState& peer : *grid) {
      if (PathsOverlap(peer.path(), e.key)) {
        if (peer.index().InsertOrRefresh(e)) ++installed;
      }
    }
  }
  return installed;
}

size_t SeedGridAtHolders(Grid* grid, const std::vector<DataItem>& corpus,
                         const std::vector<PeerId>& holders) {
  PGRID_CHECK(grid != nullptr);
  PGRID_CHECK_EQ(corpus.size(), holders.size());
  size_t installed = 0;
  for (size_t i = 0; i < corpus.size(); ++i) {
    PeerState& holder = grid->peer(holders[i]);
    holder.store().Upsert(corpus[i]);
    if (holder.index().InsertOrRefresh(EntryFor(corpus[i], holders[i]))) ++installed;
  }
  return installed;
}

}  // namespace pgrid
