#include "workload/key_generator.h"

#include "util/macros.h"

namespace pgrid {

KeyGenerator::KeyGenerator(Mode mode, size_t length, double bit_bias)
    : mode_(mode), length_(length), bit_bias_(bit_bias) {
  PGRID_CHECK(bit_bias >= 0.0 && bit_bias <= 1.0);
}

KeyPath KeyGenerator::Next(Rng* rng) const {
  PGRID_CHECK(rng != nullptr);
  if (mode_ == Mode::kUniform) return KeyPath::Random(rng, length_);
  KeyPath out;
  for (size_t i = 0; i < length_; ++i) out.PushBack(rng->Bernoulli(bit_bias_) ? 1 : 0);
  return out;
}

}  // namespace pgrid
