// Key generators for synthetic workloads.
//
// The paper assumes uniformly distributed keys (Sec. 1); kUniform reproduces that.
// kBiasedBits draws each bit as Bernoulli(bit_bias), producing geometrically skewed
// key populations along the trie -- the workload for the Sec. 6 "skewed data
// distributions" extension and its ablation bench.

#pragma once

#include <cstddef>

#include "key/key_path.h"
#include "util/rng.h"
#include "util/status.h"

namespace pgrid {

/// Draws random binary keys of a fixed length.
class KeyGenerator {
 public:
  enum class Mode {
    kUniform,     ///< each bit fair (paper's model)
    kBiasedBits,  ///< each bit is 1 with probability bit_bias
  };

  /// Creates a generator for keys of `length` bits. `bit_bias` only applies to
  /// kBiasedBits and must lie in [0, 1].
  KeyGenerator(Mode mode, size_t length, double bit_bias = 0.5);

  KeyPath Next(Rng* rng) const;

  size_t length() const { return length_; }
  Mode mode() const { return mode_; }

 private:
  Mode mode_;
  size_t length_;
  double bit_bias_;
};

}  // namespace pgrid
