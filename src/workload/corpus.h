// Synthetic data corpora and the helpers that seed a grid with them.
//
// A corpus is a set of data items with generated keys, assigned to holder peers.
// SeedGridPerfectly installs index entries at *every* co-responsible peer -- the
// perfectly consistent starting state assumed by the Sec. 5.2 update experiments
// (updates then create the inconsistency being measured). SeedGridAtHolders models a
// network where items were only just published locally.

#pragma once

#include <cstddef>
#include <vector>

#include "core/grid.h"
#include "storage/data_item.h"
#include "workload/key_generator.h"

namespace pgrid {

/// Builds `count` items with keys from `gen` (ids 1..count, version 1, payloads
/// "item-<id>") and holders drawn uniformly from [0, num_peers).
std::vector<DataItem> MakeCorpus(size_t count, size_t num_peers,
                                 const KeyGenerator& gen, Rng* rng,
                                 std::vector<PeerId>* holders);

/// Stores each item at its holder and installs its index entry at every peer whose
/// path overlaps the item key. Returns the number of entries installed.
size_t SeedGridPerfectly(Grid* grid, const std::vector<DataItem>& corpus,
                         const std::vector<PeerId>& holders);

/// Stores each item at its holder and installs the index entry only there.
size_t SeedGridAtHolders(Grid* grid, const std::vector<DataItem>& corpus,
                         const std::vector<PeerId>& holders);

}  // namespace pgrid
