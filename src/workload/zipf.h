// Zipf-distributed rank sampling for query popularity (classic P2P query traces are
// heavily skewed toward popular items).

#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace pgrid {

/// Samples ranks in [0, n) with probability proportional to 1 / (rank+1)^theta.
/// theta = 0 is uniform; theta around 0.8-1.2 matches measured P2P workloads.
class ZipfGenerator {
 public:
  ZipfGenerator(size_t n, double theta);

  size_t Next(Rng* rng) const;

  size_t n() const { return cdf_.size(); }
  double theta() const { return theta_; }

 private:
  double theta_;
  std::vector<double> cdf_;  // normalized cumulative weights
};

}  // namespace pgrid
