// A deployable P-Grid peer: the core algorithms running over a real transport.
//
// PGridNode holds one peer's protocol state (path, per-level references, leaf index,
// buddies) and serves the message handlers of protocol.h. The evaluation of the
// paper runs on the in-memory simulator (src/core, src/sim); this class is the
// deployment skeleton a downstream system embeds -- same algorithms, expressed as
// request/response interactions:
//
//  - MeetWith(peer) runs the Fig. 3 exchange: the initiator ships a state snapshot,
//    the responder merges and replies with directives (path bits to append,
//    reference-set replacements, referral addresses for recursive exchanges, index
//    entries to adopt). An epoch guard discards directives that raced with another
//    state change. Case-4 recursion is driven from both sides: the responder
//    exchanges with the initiator's referrals and vice versa, bounded by recmax and
//    the fan-out limit.
//  - Search(key) routes iteratively: each hop returns either the responsible peer's
//    matching entries or the candidate addresses at the divergence level; the
//    client backtracks depth-first across candidates (offline peers are skipped).
//  - Publish(item) routes to a responsible peer and installs the index entry there,
//    fanning out to that replica's buddies.
//
// Locking discipline: the single state mutex is NEVER held across a transport
// call. Handlers compute state changes and outgoing work under the lock, release
// it, then perform the calls.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "key/key_path.h"
#include "net/protocol.h"
#include "net/retry.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/data_store.h"
#include "storage/storage_config.h"
#include "util/rng.h"

namespace pgrid {
namespace net {

struct NodeImage;
class NodePersistence;

/// Protocol parameters of a node (the paper's knobs).
struct NodeConfig {
  size_t maxl = 8;
  size_t refmax = 4;
  size_t recmax = 2;
  size_t recursion_fanout = 2;
  /// Bound on remote hops one Search may spend before giving up.
  size_t max_route_attempts = 128;

  /// Consecutive outbound-call failures to one address before it is evicted
  /// from every reference level (failure detection with hysteresis, see
  /// docs/robustness.md). 0 disables eviction. The count is consecutive:
  /// any successful call to the address resets it, so a single dropped
  /// packet under a lossy transport never costs a good reference.
  size_t suspicion_threshold = 3;

  /// Wall-clock budget for one outbound call before it counts as *slow*
  /// (gray-failure detection, see docs/robustness.md). A call that succeeds
  /// but takes >= this many milliseconds feeds the failure detector like a
  /// failure -- a peer that chronically answers slower than the budget is as
  /// useless as a dead one -- and is counted on node.slow_calls. 0 (the
  /// default) disables the check: only hard failures raise suspicion.
  uint64_t probe_timeout_ms = 0;

  /// Eviction rate limiter: after one address is evicted, the next
  /// `eviction_cooldown` eviction *edges* (threshold crossings) are suppressed
  /// -- the suspect's count resets but it stays referenced. A slow network
  /// that pushes many peers over the threshold at once then sheds references
  /// one at a time instead of mass-evicting the healthy majority. 0 (the
  /// default) keeps the historical evict-on-every-crossing behaviour.
  size_t eviction_cooldown = 0;

  /// Retry policy for every outbound call (routing hops, exchange recursion,
  /// publish fan-out, commits, stats scrapes). The default (max_attempts = 1)
  /// keeps the historical single-shot behaviour.
  RetryConfig retry;

  /// Opt-in durable storage (storage/storage_config.h). With a non-empty dir
  /// the node persists its protocol state (snapshot + WAL delta, see
  /// net/node_persist.h) after every state-changing operation, and Start()
  /// recovers from disk when a snapshot for this address exists -- the restart
  /// path docs/storage.md describes. Empty dir (the default) = off.
  storage::StorageConfig storage;

  Status Validate() const {
    if (maxl == 0) return Status::InvalidArgument("maxl must be >= 1");
    if (refmax == 0) return Status::InvalidArgument("refmax must be >= 1");
    if (max_route_attempts == 0) {
      return Status::InvalidArgument("max_route_attempts must be >= 1");
    }
    return retry.Validate();
  }
};

/// Point-in-time copy of a node's protocol counters. The live values are atomic
/// counters in the node's metrics registry ("node.*" names); this struct is a
/// convenience snapshot for callers that do not want to walk the registry.
struct NodeStats {
  uint64_t exchanges_initiated = 0;
  uint64_t exchanges_served = 0;
  uint64_t queries_served = 0;
  uint64_t publishes_served = 0;
  uint64_t entries_adopted = 0;
};

/// One networked P-Grid peer.
class PGridNode {
 public:
  /// `transport` must outlive the node. The node does not serve until Start().
  /// `registry` is where the node's counters live; pass one shared with the
  /// transport to scrape both through a single kStats request, or null to let
  /// the node own a private registry.
  PGridNode(std::string address, RpcTransport* transport, const NodeConfig& config,
            uint64_t seed, obs::MetricsRegistry* registry = nullptr);
  ~PGridNode();

  PGridNode(const PGridNode&) = delete;
  PGridNode& operator=(const PGridNode&) = delete;

  /// Registers the message handler with the transport. With durable storage
  /// configured (NodeConfig::storage), first recovers the node's state from
  /// disk if a snapshot exists (snapshot + WAL tail, torn tail truncated) or
  /// baselines the storage with the current state otherwise; a recovery or
  /// baseline failure aborts the start.
  Status Start();

  /// True iff the last Start() installed state recovered from durable storage.
  bool recovered_from_disk() const { return recovered_; }

  /// Unregisters from the transport. Idempotent.
  void Stop();

  const std::string& address() const { return address_; }

  /// Snapshot of the current responsibility path.
  KeyPath path() const;

  /// Snapshot of the references at a (1-indexed) level; empty if out of range.
  std::vector<std::string> RefsAt(size_t level) const;

  /// Snapshot of known same-path replicas.
  std::vector<std::string> buddies() const;

  /// Snapshot of the leaf index.
  std::vector<WireEntry> entries() const;

  /// Entries parked because no responsible peer is known yet.
  std::vector<WireEntry> foreign_entries() const;

  /// All peer addresses this node currently knows (references at every level plus
  /// buddies, deduplicated). The gossip pool for autonomous meeting loops.
  std::vector<std::string> KnownPeers() const;

  /// Snapshot of the protocol counters (reads the registry atomics; lock-free).
  NodeStats stats() const;

  /// The registry backing this node's counters (shared or owned, see ctor).
  obs::MetricsRegistry& metrics() { return *metrics_; }
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

  /// Optional per-operation trace sink (null = tracing off). The recorder must
  /// outlive the node.
  ///
  /// With a recorder attached, client operations (Search, Publish, MeetWith,
  /// MaintainReferences) open root spans and every outbound RPC they make is
  /// wrapped in a kTraced envelope carrying the span's TraceContext; receiving
  /// nodes open child spans under the caller's span, so a distributed operation
  /// reconstructs as one span tree (see docs/observability.md). Nodes without a
  /// recorder still forward an incoming context downstream, so a trace survives
  /// untraced intermediaries.
  void SetTraceRecorder(obs::TraceRecorder* recorder) { trace_ = recorder; }

  /// Scrapes `peer`'s metrics registry over the transport (a kStats request) and
  /// returns the JSON snapshot it answered with.
  Result<std::string> FetchPeerStats(const std::string& peer);

  /// Runs one exchange with `peer` (the paper's exchange(this, peer, 0)).
  /// Unavailable if the peer cannot be reached; OK even if the exchange was
  /// discarded due to an epoch race (the algorithm is randomized; a lost meeting
  /// is harmless).
  Status MeetWith(const std::string& peer);

  /// Stores `item` locally and installs its index entry at a responsible peer
  /// (found by routing), fanning out to that replica's buddies.
  Status Publish(const DataItem& item);

  /// Routes a query through the grid; returns the matching index entries held by
  /// the first responsible peer found. NotFound if routing exhausts its attempts.
  Result<std::vector<WireEntry>> Search(const KeyPath& key);

  /// Routes a query and returns the address of the responsible peer that answered.
  Result<std::string> RouteToResponsible(const KeyPath& key);

  /// Probes `peer` for its health summary (path, entry count, entry digest).
  /// Unavailable if it cannot be reached -- which feeds the failure detector
  /// like any other outbound call. A valid `ctx` stitches the probe into the
  /// caller's trace.
  Result<ProbeResponse> Probe(const std::string& peer,
                              const obs::TraceContext& ctx = {});

  /// One active self-healing round: probes every known peer (failures feed the
  /// failure detector; enough consecutive ones evict), then refills each
  /// under-full reference level by routing a lookup into its complementary
  /// subtree and adopting the probed-and-verified responder. Returns the number
  /// of references recruited. Meant to be called from the same maintenance loop
  /// that drives gossip meetings (see tools/pgrid_node).
  size_t MaintainReferences();

 private:
  struct RouteResult {
    std::string responder;
    std::vector<WireEntry> entries;
  };

  /// Shared routing core behind Search and RouteToResponsible. A valid `parent`
  /// makes the route span a child of the caller's span.
  Result<RouteResult> Route(const KeyPath& key, const obs::TraceContext& parent = {});

  // ---- handler side ----
  std::string Handle(const std::string& from, const std::string& request);
  /// Dispatches an unwrapped request; `ctx` is the caller's trace context (the
  /// server-side span if this node traces, else the context as it arrived).
  std::string Dispatch(const std::string& from, const std::string& request,
                       MsgType type, const obs::TraceContext& ctx);
  std::string HandleStats();
  std::string HandleQuery(const std::string& request);
  std::string HandlePublish(const std::string& request, const obs::TraceContext& ctx);
  std::string HandleExchange(const std::string& from, const std::string& request,
                             const obs::TraceContext& ctx);
  std::string HandleCommit(const std::string& from, const std::string& request);
  std::string HandleEntryPush(const std::string& request);
  std::string HandleProbe();

  // ---- client side ----
  /// Every outbound call funnels through here: the retry policy handles
  /// transient Unavailable failures, and deadline overruns are counted on
  /// node.call_deadline_exceeded. A valid `ctx` wraps the request in a kTraced
  /// envelope so the receiver can stitch its spans under ours.
  Result<std::string> CallWithRetry(const std::string& to, const std::string& request,
                                    const obs::TraceContext& ctx = {});

  /// Failure-detector hook on the outbound funnel: successes rehabilitate the
  /// address, consecutive failures past the threshold evict it from every
  /// reference level.
  void NoteCallOutcome(const std::string& to, bool ok);

  Status MeetWithDepth(const std::string& peer, uint32_t depth,
                       const obs::TraceContext& parent = {});

  /// Sends entries to `peer`; whatever it rejects is parked in foreign_.
  void PushEntries(const std::string& peer, std::vector<WireEntry> entries,
                   const obs::TraceContext& ctx = {});

  // ---- locked helpers (mu_ must be held) ----
  /// Adds an entry to the leaf index, deduplicating by (holder, item); refreshes
  /// key/version if newer. Returns true if anything changed.
  bool AdoptEntryLocked(const WireEntry& entry);

  /// Extracts index entries that no longer overlap the path, plus parked foreign
  /// entries.
  std::vector<WireEntry> DrainNonMatchingLocked();

  /// One routing step against local state (the Fig. 2 match).
  struct LocalMatch {
    bool found = false;
    std::vector<WireEntry> matching;       // if found
    uint32_t consumed = 0;                 // if forwarding
    KeyPath remaining;                     // if forwarding
    std::vector<std::string> candidates;   // if forwarding
  };
  LocalMatch MatchLocked(const KeyPath& key, uint32_t consumed);

  /// Random refmax-subset of the union of two address lists, excluding `exclude`.
  std::vector<std::string> SampleRefsLocked(std::vector<std::string> a,
                                            const std::vector<std::string>& b,
                                            const std::string& exclude);

  /// Copies the persistent slice of the node's state (net/node_persist.h).
  NodeImage SnapshotImageLocked() const;

  /// Commits the current state to durable storage (no-op without it).
  /// persist_mu_ serializes committers and orders their WAL appends; mu_ is
  /// taken only for the in-memory state copy, never across the disk write.
  void PersistState();

  const std::string address_;
  RpcTransport* transport_;
  const NodeConfig config_;

  mutable std::mutex mu_;
  KeyPath path_;
  std::vector<std::vector<std::string>> refs_;  // refs_[i] = level i+1
  std::vector<std::string> buddies_;
  std::vector<WireEntry> entries_;
  std::vector<WireEntry> foreign_;
  DataStore store_;
  std::unordered_map<std::string, size_t> suspicion_;  // consecutive call failures
  size_t eviction_cooldown_left_ = 0;  // crossings to suppress before next evict
  uint64_t epoch_ = 0;
  Rng rng_;
  bool serving_ = false;

  // Durable storage (null without NodeConfig::storage). persist_mu_ is always
  // acquired before mu_ (PersistState); never the other way around.
  std::unique_ptr<NodePersistence> persist_;
  std::mutex persist_mu_;
  bool recovered_ = false;

  // Registry-backed protocol counters: handler threads bump these concurrently,
  // so they must be atomic -- which registry counters are by construction.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // set iff none was passed
  obs::MetricsRegistry* metrics_;
  obs::Counter* c_exchanges_initiated_;
  obs::Counter* c_exchanges_served_;
  obs::Counter* c_queries_served_;
  obs::Counter* c_publishes_served_;
  obs::Counter* c_entries_adopted_;
  obs::Counter* c_route_offline_skips_;
  obs::Counter* c_route_backtracks_;
  obs::Counter* c_call_deadline_exceeded_;
  obs::Counter* c_probes_sent_;
  obs::Counter* c_refs_evicted_;
  obs::Counter* c_refs_recruited_;
  obs::Counter* c_slow_calls_;
  obs::Histogram* h_route_attempts_;
  std::unique_ptr<RetryPolicy> retry_;  // shares the node's registry
  obs::TraceRecorder* trace_ = nullptr;
};

}  // namespace net
}  // namespace pgrid
