#include "net/wire.h"

namespace pgrid {
namespace net {

void ByteWriter::WriteKeyPath(const KeyPath& k) {
  WriteU32(static_cast<uint32_t>(k.length()));
  uint8_t acc = 0;
  for (size_t i = 0; i < k.length(); ++i) {
    if (k.bit(i) != 0) acc |= static_cast<uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      WriteU8(acc);
      acc = 0;
    }
  }
  if (k.length() % 8 != 0) WriteU8(acc);
}

Result<uint8_t> ByteReader::ReadU8() {
  PGRID_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> ByteReader::ReadU32() {
  PGRID_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  PGRID_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<std::string> ByteReader::ReadString() {
  PGRID_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
  if (len > kMaxWireCollection) {
    return Status::InvalidArgument("string length " + std::to_string(len) +
                                   " exceeds wire cap");
  }
  PGRID_RETURN_IF_ERROR(Need(len));
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

Result<KeyPath> ByteReader::ReadKeyPath() {
  PGRID_ASSIGN_OR_RETURN(uint32_t bits, ReadU32());
  if (bits > kMaxWireCollection) {
    return Status::InvalidArgument("key path length " + std::to_string(bits) +
                                   " exceeds wire cap");
  }
  const size_t bytes = (bits + 7) / 8;
  PGRID_RETURN_IF_ERROR(Need(bytes));
  KeyPath out;
  for (uint32_t i = 0; i < bits; ++i) {
    const uint8_t byte = static_cast<uint8_t>(data_[pos_ + i / 8]);
    out.PushBack((byte >> (i % 8)) & 1);
  }
  pos_ += bytes;
  return out;
}

Result<std::vector<std::string>> ByteReader::ReadStringList() {
  PGRID_ASSIGN_OR_RETURN(uint32_t count, ReadU32());
  if (count > kMaxWireCollection) {
    return Status::InvalidArgument("list size " + std::to_string(count) +
                                   " exceeds wire cap");
  }
  std::vector<std::string> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PGRID_ASSIGN_OR_RETURN(std::string s, ReadString());
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace net
}  // namespace pgrid
