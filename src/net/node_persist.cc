#include "net/node_persist.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <utility>

#include "storage/crc32.h"
#include "util/macros.h"

namespace pgrid {
namespace net {
namespace {

constexpr char kSnapMagic[4] = {'P', 'G', 'N', 'S'};
constexpr uint32_t kSnapVersion = 1;

/// WAL record types. Every record carries absolute state and is idempotent
/// (same discipline as storage/persist.cc), so replaying a prefix that was
/// already folded into a snapshot converges.
enum RecordType : uint8_t {
  kSetPath = 1,      // keypath (the full path, not the delta)
  kSetRefs = 2,      // u32 level (1-indexed) + string list (the full level)
  kSetBuddies = 3,   // string list
  kEntryPut = 4,     // wire entry (replaces any same-(holder,item) entry)
  kEntryDelete = 5,  // string holder + u64 item
  kSetForeign = 6,   // u32 count + wire entries (the full buffer)
  kStorePut = 7,     // u64 id + keypath + string payload + u64 version
  kStoreDelete = 8,  // u64 id
  kSetEpoch = 9,     // u64
};

void WriteEntry(ByteWriter* w, const WireEntry& e) {
  w->WriteString(e.holder);
  w->WriteU64(e.item_id);
  w->WriteKeyPath(e.key);
  w->WriteU64(e.version);
}

Result<WireEntry> ReadEntry(ByteReader* r) {
  WireEntry e;
  PGRID_ASSIGN_OR_RETURN(e.holder, r->ReadString());
  PGRID_ASSIGN_OR_RETURN(e.item_id, r->ReadU64());
  PGRID_ASSIGN_OR_RETURN(e.key, r->ReadKeyPath());
  PGRID_ASSIGN_OR_RETURN(e.version, r->ReadU64());
  return e;
}

void WriteItem(ByteWriter* w, const DataItem& item) {
  w->WriteU64(item.id);
  w->WriteKeyPath(item.key);
  w->WriteString(item.payload);
  w->WriteU64(item.version);
}

Result<DataItem> ReadItem(ByteReader* r) {
  DataItem item;
  PGRID_ASSIGN_OR_RETURN(item.id, r->ReadU64());
  PGRID_ASSIGN_OR_RETURN(item.key, r->ReadKeyPath());
  PGRID_ASSIGN_OR_RETURN(item.payload, r->ReadString());
  PGRID_ASSIGN_OR_RETURN(item.version, r->ReadU64());
  return item;
}

/// Entries in canonical order -- sorted by (holder, item_id) -- so snapshots of
/// the same logical state are byte-identical regardless of adoption order.
std::vector<WireEntry> CanonicalEntries(std::vector<WireEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const WireEntry& a, const WireEntry& b) {
              return std::tie(a.holder, a.item_id) < std::tie(b.holder, b.item_id);
            });
  return entries;
}

std::vector<DataItem> CanonicalItems(std::vector<DataItem> items) {
  std::sort(items.begin(), items.end(),
            [](const DataItem& a, const DataItem& b) { return a.id < b.id; });
  return items;
}

void WriteImage(ByteWriter* w, const NodeImage& image) {
  w->WriteKeyPath(image.path);
  w->WriteU32(static_cast<uint32_t>(image.refs.size()));
  for (const std::vector<std::string>& level : image.refs) {
    w->WriteStringList(level);
  }
  w->WriteStringList(image.buddies);
  const std::vector<WireEntry> entries = CanonicalEntries(image.entries);
  w->WriteU32(static_cast<uint32_t>(entries.size()));
  for (const WireEntry& e : entries) WriteEntry(w, e);
  w->WriteU32(static_cast<uint32_t>(image.foreign.size()));
  for (const WireEntry& e : image.foreign) WriteEntry(w, e);
  const std::vector<DataItem> items = CanonicalItems(image.items);
  w->WriteU32(static_cast<uint32_t>(items.size()));
  for (const DataItem& item : items) WriteItem(w, item);
  w->WriteU64(image.epoch);
}

Result<NodeImage> ReadImage(ByteReader* r) {
  NodeImage image;
  PGRID_ASSIGN_OR_RETURN(image.path, r->ReadKeyPath());
  uint32_t levels = 0;
  PGRID_ASSIGN_OR_RETURN(levels, r->ReadU32());
  if (levels > kMaxWireCollection) {
    return Status::InvalidArgument("node snapshot: ref level count too large");
  }
  image.refs.reserve(levels);
  for (uint32_t i = 0; i < levels; ++i) {
    std::vector<std::string> level;
    PGRID_ASSIGN_OR_RETURN(level, r->ReadStringList());
    image.refs.push_back(std::move(level));
  }
  PGRID_ASSIGN_OR_RETURN(image.buddies, r->ReadStringList());
  uint32_t count = 0;
  PGRID_ASSIGN_OR_RETURN(count, r->ReadU32());
  if (count > kMaxWireCollection) {
    return Status::InvalidArgument("node snapshot: entry count too large");
  }
  image.entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireEntry e;
    PGRID_ASSIGN_OR_RETURN(e, ReadEntry(r));
    image.entries.push_back(std::move(e));
  }
  PGRID_ASSIGN_OR_RETURN(count, r->ReadU32());
  if (count > kMaxWireCollection) {
    return Status::InvalidArgument("node snapshot: foreign count too large");
  }
  image.foreign.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireEntry e;
    PGRID_ASSIGN_OR_RETURN(e, ReadEntry(r));
    image.foreign.push_back(std::move(e));
  }
  PGRID_ASSIGN_OR_RETURN(count, r->ReadU32());
  if (count > kMaxWireCollection) {
    return Status::InvalidArgument("node snapshot: item count too large");
  }
  image.items.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DataItem item;
    PGRID_ASSIGN_OR_RETURN(item, ReadItem(r));
    image.items.push_back(std::move(item));
  }
  PGRID_ASSIGN_OR_RETURN(image.epoch, r->ReadU64());
  return image;
}

Status ApplyRecord(const std::string& body, NodeImage* image) {
  ByteReader r(body);
  uint8_t type = 0;
  PGRID_ASSIGN_OR_RETURN(type, r.ReadU8());
  switch (type) {
    case kSetPath: {
      PGRID_ASSIGN_OR_RETURN(image->path, r.ReadKeyPath());
      break;
    }
    case kSetRefs: {
      uint32_t level = 0;
      PGRID_ASSIGN_OR_RETURN(level, r.ReadU32());
      if (level == 0) return Status::InvalidArgument("kSetRefs level 0");
      std::vector<std::string> addrs;
      PGRID_ASSIGN_OR_RETURN(addrs, r.ReadStringList());
      if (image->refs.size() < level) image->refs.resize(level);
      image->refs[level - 1] = std::move(addrs);
      break;
    }
    case kSetBuddies: {
      PGRID_ASSIGN_OR_RETURN(image->buddies, r.ReadStringList());
      break;
    }
    case kEntryPut: {
      WireEntry e;
      PGRID_ASSIGN_OR_RETURN(e, ReadEntry(&r));
      auto it = std::find_if(image->entries.begin(), image->entries.end(),
                             [&e](const WireEntry& x) {
                               return x.holder == e.holder && x.item_id == e.item_id;
                             });
      if (it != image->entries.end()) {
        *it = std::move(e);
      } else {
        image->entries.push_back(std::move(e));
      }
      break;
    }
    case kEntryDelete: {
      std::string holder;
      uint64_t item = 0;
      PGRID_ASSIGN_OR_RETURN(holder, r.ReadString());
      PGRID_ASSIGN_OR_RETURN(item, r.ReadU64());
      std::erase_if(image->entries, [&](const WireEntry& x) {
        return x.holder == holder && x.item_id == item;
      });
      break;
    }
    case kSetForeign: {
      uint32_t count = 0;
      PGRID_ASSIGN_OR_RETURN(count, r.ReadU32());
      if (count > kMaxWireCollection) {
        return Status::InvalidArgument("kSetForeign count too large");
      }
      image->foreign.clear();
      image->foreign.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        WireEntry e;
        PGRID_ASSIGN_OR_RETURN(e, ReadEntry(&r));
        image->foreign.push_back(std::move(e));
      }
      break;
    }
    case kStorePut: {
      DataItem item;
      PGRID_ASSIGN_OR_RETURN(item, ReadItem(&r));
      auto it = std::find_if(image->items.begin(), image->items.end(),
                             [&item](const DataItem& x) { return x.id == item.id; });
      if (it != image->items.end()) {
        *it = std::move(item);
      } else {
        image->items.push_back(std::move(item));
      }
      break;
    }
    case kStoreDelete: {
      uint64_t id = 0;
      PGRID_ASSIGN_OR_RETURN(id, r.ReadU64());
      std::erase_if(image->items, [id](const DataItem& x) { return x.id == id; });
      break;
    }
    case kSetEpoch: {
      PGRID_ASSIGN_OR_RETURN(image->epoch, r.ReadU64());
      break;
    }
    default:
      return Status::InvalidArgument("unknown node WAL record type " +
                                     std::to_string(type));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in node WAL record");
  }
  return Status::OK();
}

/// Appends the shadow -> live delta to `wal`, one record per logical change.
Status AppendDelta(const NodeImage& from, const NodeImage& to,
                   storage::WalWriter* wal, uint64_t* records) {
  auto emit = [wal, records](ByteWriter* w) -> Status {
    Status s = wal->Append(w->data());
    if (s.ok()) ++*records;
    return s;
  };
  if (from.path != to.path) {
    ByteWriter w;
    w.WriteU8(kSetPath);
    w.WriteKeyPath(to.path);
    PGRID_RETURN_IF_ERROR(emit(&w));
  }
  const size_t levels = std::max(from.refs.size(), to.refs.size());
  for (size_t i = 0; i < levels; ++i) {
    static const std::vector<std::string> kEmpty;
    const std::vector<std::string>& a = i < from.refs.size() ? from.refs[i] : kEmpty;
    const std::vector<std::string>& b = i < to.refs.size() ? to.refs[i] : kEmpty;
    if (a == b) continue;
    ByteWriter w;
    w.WriteU8(kSetRefs);
    w.WriteU32(static_cast<uint32_t>(i + 1));
    w.WriteStringList(b);
    PGRID_RETURN_IF_ERROR(emit(&w));
  }
  if (from.buddies != to.buddies) {
    ByteWriter w;
    w.WriteU8(kSetBuddies);
    w.WriteStringList(to.buddies);
    PGRID_RETURN_IF_ERROR(emit(&w));
  }
  std::map<std::pair<std::string, uint64_t>, const WireEntry*> old_entries;
  for (const WireEntry& e : from.entries) old_entries[{e.holder, e.item_id}] = &e;
  std::map<std::pair<std::string, uint64_t>, const WireEntry*> new_entries;
  for (const WireEntry& e : to.entries) new_entries[{e.holder, e.item_id}] = &e;
  for (const auto& [key, e] : new_entries) {
    auto it = old_entries.find(key);
    if (it != old_entries.end() && *it->second == *e) continue;
    ByteWriter w;
    w.WriteU8(kEntryPut);
    WriteEntry(&w, *e);
    PGRID_RETURN_IF_ERROR(emit(&w));
  }
  for (const auto& [key, e] : old_entries) {
    if (new_entries.count(key) != 0) continue;
    ByteWriter w;
    w.WriteU8(kEntryDelete);
    w.WriteString(key.first);
    w.WriteU64(key.second);
    PGRID_RETURN_IF_ERROR(emit(&w));
  }
  if (from.foreign != to.foreign) {
    ByteWriter w;
    w.WriteU8(kSetForeign);
    w.WriteU32(static_cast<uint32_t>(to.foreign.size()));
    for (const WireEntry& e : to.foreign) WriteEntry(&w, e);
    PGRID_RETURN_IF_ERROR(emit(&w));
  }
  std::map<uint64_t, const DataItem*> old_items;
  for (const DataItem& item : from.items) old_items[item.id] = &item;
  std::map<uint64_t, const DataItem*> new_items;
  for (const DataItem& item : to.items) new_items[item.id] = &item;
  for (const auto& [id, item] : new_items) {
    auto it = old_items.find(id);
    if (it != old_items.end() && it->second->key == item->key &&
        it->second->payload == item->payload &&
        it->second->version == item->version) {
      continue;
    }
    ByteWriter w;
    w.WriteU8(kStorePut);
    WriteItem(&w, *item);
    PGRID_RETURN_IF_ERROR(emit(&w));
  }
  for (const auto& [id, item] : old_items) {
    if (new_items.count(id) != 0) continue;
    ByteWriter w;
    w.WriteU8(kStoreDelete);
    w.WriteU64(id);
    PGRID_RETURN_IF_ERROR(emit(&w));
  }
  if (from.epoch != to.epoch) {
    ByteWriter w;
    w.WriteU8(kSetEpoch);
    w.WriteU64(to.epoch);
    PGRID_RETURN_IF_ERROR(emit(&w));
  }
  return Status::OK();
}

std::string SanitizeAddress(const std::string& address) {
  std::string stem = address;
  for (char& c : stem) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '.';
    if (!ok) c = '_';
  }
  return stem;
}

}  // namespace

NodePersistence::NodePersistence(storage::StorageConfig config, std::string address)
    : config_(std::move(config)), stem_(SanitizeAddress(address)) {
  PGRID_CHECK(config_.enabled());
  std::error_code ec;
  std::filesystem::create_directories(config_.dir, ec);
}

std::string NodePersistence::SnapshotPath() const {
  return config_.dir + "/node-" + stem_ + ".snap";
}

std::string NodePersistence::WalPath() const {
  return config_.dir + "/node-" + stem_ + ".wal";
}

bool NodePersistence::HasState() const {
  std::error_code ec;
  return std::filesystem::exists(SnapshotPath(), ec);
}

Status NodePersistence::WriteSnapshot(const NodeImage& image) {
  ByteWriter body;
  WriteImage(&body, image);
  ByteWriter file;
  file.WriteU8(static_cast<uint8_t>(kSnapMagic[0]));
  file.WriteU8(static_cast<uint8_t>(kSnapMagic[1]));
  file.WriteU8(static_cast<uint8_t>(kSnapMagic[2]));
  file.WriteU8(static_cast<uint8_t>(kSnapMagic[3]));
  file.WriteU32(kSnapVersion);
  const uint32_t crc = storage::Crc32(body.data());
  std::string bytes = file.Take();
  bytes += body.data();
  ByteWriter trailer;
  trailer.WriteU32(crc);
  bytes += trailer.data();

  const std::string path = SnapshotPath();
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot open " + tmp);
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp);
  }
  return Status::OK();
}

Result<NodeImage> NodePersistence::ReadSnapshot() const {
  const std::string path = SnapshotPath();
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("no snapshot at " + path);
  std::string bytes;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  if (bytes.size() < 12) return Status::Internal(path + " is truncated");
  if (bytes.compare(0, 4, kSnapMagic, 4) != 0) {
    return Status::Internal(path + " is not a node snapshot");
  }
  ByteReader header(std::string_view(bytes).substr(4, 4));
  uint32_t version = 0;
  PGRID_ASSIGN_OR_RETURN(version, header.ReadU32());
  if (version != kSnapVersion) {
    return Status::Internal(path + " has unsupported version " +
                            std::to_string(version));
  }
  const std::string_view body =
      std::string_view(bytes).substr(8, bytes.size() - 12);
  ByteReader trailer(std::string_view(bytes).substr(bytes.size() - 4));
  uint32_t want = 0;
  PGRID_ASSIGN_OR_RETURN(want, trailer.ReadU32());
  if (storage::Crc32(body) != want) {
    return Status::Internal(path + " failed checksum validation");
  }
  ByteReader r(body);
  NodeImage image;
  PGRID_ASSIGN_OR_RETURN(image, ReadImage(&r));
  if (!r.AtEnd()) return Status::Internal(path + " has trailing bytes");
  return image;
}

Status NodePersistence::Attach(const NodeImage& image) {
  PGRID_RETURN_IF_ERROR(WriteSnapshot(image));
  wal_.Close();
  PGRID_RETURN_IF_ERROR(
      wal_.Open(WalPath(), config_.sync_mode, /*truncate=*/true));
  shadow_ = image;
  attached_ = true;
  commits_since_compact_ = 0;
  return Status::OK();
}

Result<uint64_t> NodePersistence::Commit(const NodeImage& image) {
  if (!attached_) return Status::FailedPrecondition("node not attached");
  uint64_t records = 0;
  PGRID_RETURN_IF_ERROR(AppendDelta(shadow_, image, &wal_, &records));
  if (records == 0) return records;
  shadow_ = image;
  if (config_.compact_every != 0 &&
      ++commits_since_compact_ >= config_.compact_every) {
    PGRID_RETURN_IF_ERROR(Compact());
  }
  return records;
}

Status NodePersistence::Compact() {
  if (!attached_) return Status::FailedPrecondition("node not attached");
  PGRID_RETURN_IF_ERROR(WriteSnapshot(shadow_));
  wal_.Close();
  PGRID_RETURN_IF_ERROR(
      wal_.Open(WalPath(), config_.sync_mode, /*truncate=*/true));
  commits_since_compact_ = 0;
  return Status::OK();
}

Result<NodeImage> NodePersistence::Recover() {
  // An in-process recovery while still attached (tests, restart-in-place) must
  // see records sitting in the writer's stdio buffer (SyncMode::kNone).
  if (wal_.is_open()) PGRID_RETURN_IF_ERROR(wal_.Sync());
  NodeImage image;
  PGRID_ASSIGN_OR_RETURN(image, ReadSnapshot());
  Result<storage::WalContents> wal = storage::ReadWal(WalPath());
  if (wal.ok()) {
    for (const std::string& record : wal->records) {
      PGRID_RETURN_IF_ERROR(ApplyRecord(record, &image));
    }
    if (wal->torn_tail) {
      PGRID_RETURN_IF_ERROR(storage::TruncateWal(WalPath(), wal->valid_bytes));
    }
  } else if (wal.status().code() != StatusCode::kNotFound) {
    return wal.status();
  }
  return image;
}

}  // namespace net
}  // namespace pgrid
