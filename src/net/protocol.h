// Message schema of the networked P-Grid protocol.
//
// All node interactions are request/response over RpcTransport:
//   - Ping            liveness probe.
//   - Query           one routing step: the target matches the query suffix against
//                     its own path and answers Found (it is responsible), Forward
//                     (candidate addresses at the divergence level), or Miss.
//                     Clients route iteratively (depth-first over candidates).
//   - Publish         install an index entry at a responsible peer (optionally
//                     fanning out to its buddies).
//   - Exchange        the construction algorithm: the initiator sends its state
//                     snapshot; the responder merges, mutates itself, and returns
//                     directives (bits to append, reference updates, referral
//                     addresses for recursive exchanges, entries to adopt).
//   - EntryPush       hand over index entries (data reconciliation after splits);
//                     the receiver returns the entries it rejected so nothing is
//                     ever silently dropped.
//   - Stats           remote scrape: the target answers with a JSON snapshot of
//                     its metrics registry (see docs/observability.md), so any
//                     node in a deployment can be monitored over the ordinary
//                     transport without a side channel.
//
// Every message is length-safe to decode (see wire.h); malformed input yields an
// error response rather than a crash.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "key/key_path.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "util/result.h"

namespace pgrid {
namespace net {

/// Message type tags (first byte of every payload).
enum class MsgType : uint8_t {
  kPing = 1,
  kPong = 2,
  kQueryReq = 3,
  kQueryRespFound = 4,
  kQueryRespForward = 5,
  kQueryRespMiss = 6,
  kPublishReq = 7,
  kPublishAck = 8,
  kExchangeReq = 9,
  kExchangeResp = 10,
  kEntryPushReq = 11,
  kEntryPushResp = 12,
  kError = 13,
  kCommitReq = 14,
  kCommitAck = 15,
  kStatsReq = 16,
  kStatsResp = 17,
  kProbeReq = 18,
  kProbeResp = 19,
  kTraced = 20,  ///< causal-tracing envelope wrapping any request
};

/// An index entry on the wire: holders are transport addresses.
struct WireEntry {
  std::string holder;
  uint64_t item_id = 0;
  KeyPath key;
  uint64_t version = 0;

  friend bool operator==(const WireEntry&, const WireEntry&) = default;
};

/// One reference level: the addresses a peer keeps at a given (1-indexed) level.
struct WireRefLevel {
  uint32_t level = 0;
  std::vector<std::string> addresses;

  friend bool operator==(const WireRefLevel&, const WireRefLevel&) = default;
};

// ---- Query ----

struct QueryRequest {
  KeyPath key;       ///< remaining query suffix
  uint32_t consumed = 0;  ///< levels of the *target's* path already matched
};

struct QueryResponseFound {
  std::string responder;
  std::vector<WireEntry> entries;  ///< entries under the query at the responder
};

struct QueryResponseForward {
  uint32_t consumed = 0;  ///< levels matched at the forwarding peer (for the next hop)
  KeyPath remaining;      ///< query suffix to present to the candidates
  std::vector<std::string> candidates;  ///< addresses at the divergence level
};

// ---- Publish ----

struct PublishRequest {
  WireEntry entry;
  uint8_t forward_to_buddies = 0;
};

struct PublishAck {
  uint8_t installed = 0;
  uint32_t buddies_notified = 0;
};

// ---- Exchange ----

struct ExchangeRequest {
  std::string initiator;
  uint64_t epoch = 0;  ///< initiator's state epoch; directives apply only if unchanged
  KeyPath path;
  std::vector<WireRefLevel> refs;
  uint32_t depth = 0;  ///< recursion depth (bounded by recmax)
};

struct ExchangeResponse {
  uint64_t epoch = 0;              ///< echoed initiator epoch
  KeyPath append_bits;             ///< bits the initiator appends to its path
  std::vector<WireRefLevel> ref_updates;  ///< full replacements per level
  std::vector<std::string> referrals;     ///< peers to exchange with at depth+1
  uint8_t buddy = 0;               ///< responder is a same-path replica
  std::vector<WireEntry> entries;  ///< entries the initiator should adopt
};

// ---- Commit ----

/// Sent by an exchange initiator after it has actually applied an append
/// directive: "my bit at `level` is now `bit`". Only then may the responder
/// install a reference to the initiator at that level -- the initiator may have
/// discarded the directive (epoch race), in which case no commit is ever sent and
/// no dangling reference is created.
struct CommitRequest {
  uint32_t level = 0;
  uint8_t bit = 0;
};

// ---- Stats ----

/// Remote metrics scrape. The JSON document is the registry snapshot produced by
/// obs::ToJson (kept as an opaque string on the wire so the metric schema can
/// evolve without protocol changes).
struct StatsResponse {
  std::string json;
};

// ---- Probe ----

/// Lightweight health probe (see repair in docs/robustness.md): unlike Ping it
/// returns enough of the target's state -- path plus an order-independent FNV
/// digest of its entry set -- for the prober to verify the reference property
/// and detect replica divergence in one round trip.
struct ProbeResponse {
  KeyPath path;
  uint32_t entry_count = 0;
  uint64_t index_digest = 0;
};

// ---- Traced envelope ----

/// Causal-tracing wrapper: any request may be sent as kTraced, which prefixes
/// the encoded inner message with the sender's TraceContext (trace id, parent
/// span id, parent depth). The receiver opens a child span under parent_span,
/// handles `inner` exactly as if it had arrived bare, and answers with the
/// ordinary (unwrapped) response. Nodes that do not trace still unwrap and
/// serve the inner request, so tracing is never load-bearing for correctness.
struct TracedEnvelope {
  obs::TraceContext ctx;
  std::string inner;  ///< complete encoded request, tag byte included
};

// ---- EntryPush ----

struct EntryPushRequest {
  std::vector<WireEntry> entries;
};

struct EntryPushResponse {
  std::vector<WireEntry> rejected;  ///< entries the receiver is not responsible for
};

// ---- Encoding / decoding ----

std::string EncodePing();
std::string EncodePong();
std::string EncodeError(const std::string& message);
std::string EncodeQueryRequest(const QueryRequest& m);
std::string EncodeQueryResponseFound(const QueryResponseFound& m);
std::string EncodeQueryResponseForward(const QueryResponseForward& m);
std::string EncodeQueryResponseMiss();
std::string EncodePublishRequest(const PublishRequest& m);
std::string EncodePublishAck(const PublishAck& m);
std::string EncodeExchangeRequest(const ExchangeRequest& m);
std::string EncodeExchangeResponse(const ExchangeResponse& m);
std::string EncodeEntryPushRequest(const EntryPushRequest& m);
std::string EncodeEntryPushResponse(const EntryPushResponse& m);
std::string EncodeCommitRequest(const CommitRequest& m);
std::string EncodeCommitAck();
std::string EncodeStatsRequest();
std::string EncodeStatsResponse(const StatsResponse& m);
std::string EncodeProbeRequest();
std::string EncodeProbeResponse(const ProbeResponse& m);
std::string EncodeTraced(const obs::TraceContext& ctx, std::string_view inner);

/// Reads the leading type tag (does not consume anything else).
Result<MsgType> PeekType(const std::string& payload);

Result<QueryRequest> DecodeQueryRequest(const std::string& payload);
Result<QueryResponseFound> DecodeQueryResponseFound(const std::string& payload);
Result<QueryResponseForward> DecodeQueryResponseForward(const std::string& payload);
Result<PublishRequest> DecodePublishRequest(const std::string& payload);
Result<PublishAck> DecodePublishAck(const std::string& payload);
Result<ExchangeRequest> DecodeExchangeRequest(const std::string& payload);
Result<ExchangeResponse> DecodeExchangeResponse(const std::string& payload);
Result<EntryPushRequest> DecodeEntryPushRequest(const std::string& payload);
Result<EntryPushResponse> DecodeEntryPushResponse(const std::string& payload);
Result<CommitRequest> DecodeCommitRequest(const std::string& payload);
Result<StatsResponse> DecodeStatsResponse(const std::string& payload);
Result<ProbeResponse> DecodeProbeResponse(const std::string& payload);
Result<TracedEnvelope> DecodeTraced(const std::string& payload);
Result<std::string> DecodeError(const std::string& payload);

}  // namespace net
}  // namespace pgrid
