#include "net/node.h"

#include <algorithm>
#include <chrono>

#include "net/node_persist.h"
#include "obs/export.h"
#include "util/logging.h"
#include "util/macros.h"

namespace pgrid {
namespace net {

namespace {

/// Deduplicating union of address lists.
std::vector<std::string> UnionAddrs(std::vector<std::string> a,
                                    const std::vector<std::string>& b) {
  for (const std::string& s : b) {
    if (std::find(a.begin(), a.end(), s) == a.end()) a.push_back(s);
  }
  return a;
}

void RemoveAddr(std::vector<std::string>* v, const std::string& addr) {
  v->erase(std::remove(v->begin(), v->end(), addr), v->end());
}

/// Order-independent FNV-1a digest of an entry set (entry order on two replicas
/// is not canonical, so the fold must commute). Matches the simulator's
/// IndexDigest idiom: equal sets at equal versions iff equal digests. Each
/// per-entry hash is finalized with Mix64 before summing -- raw FNV values are
/// linear enough in the trailing version field that version skew on two entries
/// can cancel across the sum (see sim/digest.h).
uint64_t EntrySetDigest(const std::vector<WireEntry>& entries) {
  uint64_t sum = entries.size() * 0x9e3779b97f4a7c15ull;
  for (const WireEntry& e : entries) {
    uint64_t h = 0xcbf29ce484222325ull;
    const auto fold = [&h](const void* data, size_t n) {
      const unsigned char* p = static_cast<const unsigned char*>(data);
      for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
      }
    };
    const auto fold_u64 = [&fold](uint64_t v) { fold(&v, sizeof(v)); };
    const auto fold_str = [&](const std::string& s) {
      fold_u64(s.size());
      fold(s.data(), s.size());
    };
    fold_str(e.holder);
    fold_u64(e.item_id);
    fold_str(e.key.ToString());
    fold_u64(e.version);
    sum += Mix64(h);
  }
  return sum;
}

}  // namespace

PGridNode::PGridNode(std::string address, RpcTransport* transport,
                     const NodeConfig& config, uint64_t seed,
                     obs::MetricsRegistry* registry)
    : address_(std::move(address)),
      transport_(transport),
      config_(config),
      rng_(seed) {
  PGRID_CHECK(transport != nullptr);
  PGRID_CHECK(config.Validate().ok());
  if (registry == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_metrics_.get();
  }
  metrics_ = registry;
  c_exchanges_initiated_ = metrics_->GetCounter("node.exchanges_initiated");
  c_exchanges_served_ = metrics_->GetCounter("node.exchanges_served");
  c_queries_served_ = metrics_->GetCounter("node.queries_served");
  c_publishes_served_ = metrics_->GetCounter("node.publishes_served");
  c_entries_adopted_ = metrics_->GetCounter("node.entries_adopted");
  c_route_offline_skips_ = metrics_->GetCounter("node.route_offline_skips");
  c_route_backtracks_ = metrics_->GetCounter("node.route_backtracks");
  c_call_deadline_exceeded_ = metrics_->GetCounter("node.call_deadline_exceeded");
  c_probes_sent_ = metrics_->GetCounter("node.probes_sent");
  c_refs_evicted_ = metrics_->GetCounter("node.refs_evicted");
  c_refs_recruited_ = metrics_->GetCounter("node.refs_recruited");
  c_slow_calls_ = metrics_->GetCounter("node.slow_calls");
  h_route_attempts_ = metrics_->GetHistogram("node.route_attempts", obs::CountBounds());
  PGRID_CHECK(c_exchanges_initiated_ && c_exchanges_served_ && c_queries_served_ &&
              c_publishes_served_ && c_entries_adopted_ && c_route_offline_skips_ &&
              c_route_backtracks_ && c_call_deadline_exceeded_ && c_probes_sent_ &&
              c_refs_evicted_ && c_refs_recruited_ && c_slow_calls_ &&
              h_route_attempts_);
  // An independent retry RNG stream: the node's protocol randomness (rng_) must
  // not shift when retries draw jitter.
  retry_ = std::make_unique<RetryPolicy>(config_.retry,
                                         seed ^ 0x9E3779B97F4A7C15ull, metrics_);
  if (config_.storage.enabled()) {
    persist_ = std::make_unique<NodePersistence>(config_.storage, address_);
  }
}

NodeImage PGridNode::SnapshotImageLocked() const {
  NodeImage image;
  image.path = path_;
  image.refs = refs_;
  image.buddies = buddies_;
  image.entries = entries_;
  image.foreign = foreign_;
  image.items.reserve(store_.size());
  for (const auto& [id, item] : store_) image.items.push_back(item);
  image.epoch = epoch_;
  return image;
}

void PGridNode::PersistState() {
  if (persist_ == nullptr) return;
  std::lock_guard<std::mutex> plock(persist_mu_);
  NodeImage image;
  {
    std::lock_guard<std::mutex> lock(mu_);
    image = SnapshotImageLocked();
  }
  Result<uint64_t> committed = persist_->Commit(image);
  if (!committed.ok()) {
    PGRID_LOG(Warning) << "durable commit failed for " << address_ << ": "
                       << committed.status().ToString();
  }
}

Result<std::string> PGridNode::CallWithRetry(const std::string& to,
                                             const std::string& request,
                                             const obs::TraceContext& ctx) {
  // A valid context rides along as a kTraced envelope -- even when this node
  // does not record spans itself, so traces survive untraced intermediaries.
  std::string wrapped;
  const std::string* payload = &request;
  if (ctx.valid()) {
    wrapped = EncodeTraced(ctx, request);
    payload = &wrapped;
  }
  // With a probe timeout configured, a *slow* success feeds the failure
  // detector like a failure (gray-failure detection): a peer that chronically
  // answers slower than the budget is as useless as a dead one. Only measured
  // when configured, so the default path stays clock-free.
  bool slow = false;
  const auto start = config_.probe_timeout_ms > 0
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  Result<std::string> result = retry_->Call(transport_, to, address_, *payload);
  if (config_.probe_timeout_ms > 0 && result.ok()) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    if (static_cast<uint64_t>(elapsed.count()) >= config_.probe_timeout_ms) {
      slow = true;
      c_slow_calls_->Increment();
    }
  }
  if (!result.ok() && result.status().code() == StatusCode::kDeadlineExceeded) {
    c_call_deadline_exceeded_->Increment();
  }
  NoteCallOutcome(to, result.ok() && !slow);
  return result;
}

void PGridNode::NoteCallOutcome(const std::string& to, bool ok) {
  if (config_.suspicion_threshold == 0 || to == address_) return;
  uint64_t removed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ok) {
      suspicion_.erase(to);
      return;
    }
    // The failure is only final after the retry policy gave up, so the counter
    // tracks consecutive *exhausted* calls, not individual packets.
    if (++suspicion_[to] < config_.suspicion_threshold) return;
    suspicion_.erase(to);  // eviction resets the slate for a later re-recruitment
    if (eviction_cooldown_left_ > 0) {
      // Rate-limited: this crossing is suppressed, the suspect stays
      // referenced (and starts accumulating suspicion again from zero).
      --eviction_cooldown_left_;
      return;
    }
    eviction_cooldown_left_ = config_.eviction_cooldown;
    for (std::vector<std::string>& level : refs_) {
      const size_t before = level.size();
      RemoveAddr(&level, to);
      removed += before - level.size();
    }
    // Buddies go too: a confirmed-dead replica would otherwise be re-probed on
    // every maintenance round and fanned out to on every publish, forever.
    const size_t buddies_before = buddies_.size();
    RemoveAddr(&buddies_, to);
    removed += buddies_before - buddies_.size();
    c_refs_evicted_->Increment(removed);
  }
  if (removed > 0) PersistState();
}

PGridNode::~PGridNode() { Stop(); }

Status PGridNode::Start() {
  recovered_ = false;
  if (persist_ != nullptr) {
    std::lock_guard<std::mutex> plock(persist_mu_);
    if (persist_->HasState()) {
      Result<NodeImage> image = persist_->Recover();
      if (!image.ok()) return image.status();
      // Re-baseline before installing: Attach copies the image, so the moves
      // below are safe, and the WAL restarts empty against a fresh snapshot.
      PGRID_RETURN_IF_ERROR(persist_->Attach(*image));
      std::lock_guard<std::mutex> lock(mu_);
      path_ = std::move(image->path);
      refs_ = std::move(image->refs);
      buddies_ = std::move(image->buddies);
      entries_ = std::move(image->entries);
      foreign_ = std::move(image->foreign);
      store_ = DataStore();
      for (DataItem& item : image->items) store_.Upsert(std::move(item));
      // A restart is a state change: directives computed against the
      // pre-crash state (an exchange in flight when we died) must not apply.
      epoch_ = image->epoch + 1;
      suspicion_.clear();  // the failure detector restarts from a clean slate
      recovered_ = true;
    } else {
      NodeImage image;
      {
        std::lock_guard<std::mutex> lock(mu_);
        image = SnapshotImageLocked();
      }
      PGRID_RETURN_IF_ERROR(persist_->Attach(image));
    }
  }
  Status s = transport_->Serve(
      address_, [this](const std::string& from, const std::string& request) {
        return Handle(from, request);
      });
  if (s.ok()) serving_ = true;
  return s;
}

void PGridNode::Stop() {
  if (serving_) {
    transport_->StopServing(address_);
    serving_ = false;
  }
}

KeyPath PGridNode::path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return path_;
}

std::vector<std::string> PGridNode::RefsAt(size_t level) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (level < 1 || level > refs_.size()) return {};
  return refs_[level - 1];
}

std::vector<std::string> PGridNode::buddies() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buddies_;
}

std::vector<WireEntry> PGridNode::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

std::vector<WireEntry> PGridNode::foreign_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return foreign_;
}

NodeStats PGridNode::stats() const {
  NodeStats out;
  out.exchanges_initiated = c_exchanges_initiated_->value();
  out.exchanges_served = c_exchanges_served_->value();
  out.queries_served = c_queries_served_->value();
  out.publishes_served = c_publishes_served_->value();
  out.entries_adopted = c_entries_adopted_->value();
  return out;
}

std::vector<std::string> PGridNode::KnownPeers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& level : refs_) {
    for (const std::string& addr : level) {
      if (std::find(out.begin(), out.end(), addr) == out.end()) out.push_back(addr);
    }
  }
  for (const std::string& addr : buddies_) {
    if (std::find(out.begin(), out.end(), addr) == out.end()) out.push_back(addr);
  }
  return out;
}

// ---- locked helpers ----

bool PGridNode::AdoptEntryLocked(const WireEntry& entry) {
  for (WireEntry& e : entries_) {
    if (e.holder == entry.holder && e.item_id == entry.item_id) {
      if (entry.version > e.version) {
        e.version = entry.version;
        e.key = entry.key;
        return true;
      }
      return false;
    }
  }
  entries_.push_back(entry);
  c_entries_adopted_->Increment();
  return true;
}

std::vector<WireEntry> PGridNode::DrainNonMatchingLocked() {
  std::vector<WireEntry> out = std::move(foreign_);
  foreign_.clear();
  auto mid = std::partition(entries_.begin(), entries_.end(), [this](const WireEntry& e) {
    return PathsOverlap(path_, e.key);
  });
  out.insert(out.end(), std::make_move_iterator(mid),
             std::make_move_iterator(entries_.end()));
  entries_.erase(mid, entries_.end());
  return out;
}

PGridNode::LocalMatch PGridNode::MatchLocked(const KeyPath& key, uint32_t consumed) {
  LocalMatch out;
  const KeyPath rempath = path_.SuffixFrom(consumed);
  const size_t lc = key.CommonPrefixLength(rempath);
  if (lc == key.length() || lc == rempath.length()) {
    out.found = true;
    // Reconstruct the full query: the consumed prefix of our own path plus the
    // remaining suffix (they agree by the routing invariant).
    const KeyPath full =
        path_.Prefix(std::min<size_t>(consumed, path_.length())).Concat(key);
    for (const WireEntry& e : entries_) {
      if (PathsOverlap(e.key, full)) out.matching.push_back(e);
    }
    return out;
  }
  out.consumed = consumed + static_cast<uint32_t>(lc);
  out.remaining = key.SuffixFrom(lc);
  const size_t level = consumed + lc + 1;  // 1-indexed divergence level
  if (level <= refs_.size()) out.candidates = refs_[level - 1];
  return out;
}

std::vector<std::string> PGridNode::SampleRefsLocked(std::vector<std::string> a,
                                                     const std::vector<std::string>& b,
                                                     const std::string& exclude) {
  std::vector<std::string> u = UnionAddrs(std::move(a), b);
  RemoveAddr(&u, exclude);
  return rng_.SampleWithoutReplacement(std::move(u), config_.refmax);
}

// ---- handler side ----

namespace {

/// Server-side span name for a request type.
const char* ServeSpanName(MsgType type) {
  switch (type) {
    case MsgType::kPing:
      return "node.serve.ping";
    case MsgType::kQueryReq:
      return "node.serve.query";
    case MsgType::kPublishReq:
      return "node.serve.publish";
    case MsgType::kExchangeReq:
      return "node.serve.exchange";
    case MsgType::kCommitReq:
      return "node.serve.commit";
    case MsgType::kEntryPushReq:
      return "node.serve.entry_push";
    case MsgType::kStatsReq:
      return "node.serve.stats";
    case MsgType::kProbeReq:
      return "node.serve.probe";
    default:
      return "node.serve.other";
  }
}

}  // namespace

std::string PGridNode::Handle(const std::string& from, const std::string& request) {
  Result<MsgType> type = PeekType(request);
  if (!type.ok()) return EncodeError(type.status().ToString());
  if (*type != MsgType::kTraced) {
    return Dispatch(from, request, *type, obs::TraceContext{});
  }
  // Traced envelope: unwrap, stitch a server-side child span under the caller's
  // span (if this node records), and serve the inner request as if it had
  // arrived bare. The response is the ordinary unwrapped response.
  Result<TracedEnvelope> env = DecodeTraced(request);
  if (!env.ok()) return EncodeError(env.status().ToString());
  Result<MsgType> inner_type = PeekType(env->inner);
  if (!inner_type.ok()) return EncodeError(inner_type.status().ToString());
  if (trace_ == nullptr) {
    // Not recording here: pass the caller's context through so downstream hops
    // still stitch under the original span.
    return Dispatch(from, env->inner, *inner_type, env->ctx);
  }
  obs::TraceSpan serve(trace_, ServeSpanName(*inner_type), env->ctx,
                       "node=" + address_ + " from=" + from);
  return Dispatch(from, env->inner, *inner_type, serve.context());
}

std::string PGridNode::Dispatch(const std::string& from, const std::string& request,
                                MsgType type, const obs::TraceContext& ctx) {
  switch (type) {
    case MsgType::kPing:
      return EncodePong();
    case MsgType::kQueryReq:
      return HandleQuery(request);
    case MsgType::kPublishReq: {
      std::string response = HandlePublish(request, ctx);
      PersistState();
      return response;
    }
    case MsgType::kExchangeReq: {
      std::string response = HandleExchange(from, request, ctx);
      PersistState();
      return response;
    }
    case MsgType::kCommitReq: {
      std::string response = HandleCommit(from, request);
      PersistState();
      return response;
    }
    case MsgType::kEntryPushReq: {
      std::string response = HandleEntryPush(request);
      PersistState();
      return response;
    }
    case MsgType::kStatsReq:
      return HandleStats();
    case MsgType::kProbeReq:
      return HandleProbe();
    default:
      return EncodeError("unexpected request type");
  }
}

std::string PGridNode::HandleStats() {
  StatsResponse resp;
  resp.json = obs::ToJson(metrics_->Snapshot());
  return EncodeStatsResponse(resp);
}

std::string PGridNode::HandleProbe() {
  ProbeResponse resp;
  std::lock_guard<std::mutex> lock(mu_);
  resp.path = path_;
  resp.entry_count = static_cast<uint32_t>(entries_.size());
  resp.index_digest = EntrySetDigest(entries_);
  return EncodeProbeResponse(resp);
}

std::string PGridNode::HandleQuery(const std::string& request) {
  Result<QueryRequest> req = DecodeQueryRequest(request);
  if (!req.ok()) return EncodeError(req.status().ToString());
  c_queries_served_->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  LocalMatch m = MatchLocked(req->key, req->consumed);
  if (m.found) {
    QueryResponseFound resp;
    resp.responder = address_;
    resp.entries = std::move(m.matching);
    return EncodeQueryResponseFound(resp);
  }
  if (m.candidates.empty()) return EncodeQueryResponseMiss();
  QueryResponseForward resp;
  resp.consumed = m.consumed;
  resp.remaining = m.remaining;
  resp.candidates = std::move(m.candidates);
  return EncodeQueryResponseForward(resp);
}

std::string PGridNode::HandlePublish(const std::string& request,
                                     const obs::TraceContext& ctx) {
  Result<PublishRequest> req = DecodePublishRequest(request);
  if (!req.ok()) return EncodeError(req.status().ToString());
  PublishAck ack;
  std::vector<std::string> buddies_to_notify;
  c_publishes_served_->Increment();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (PathsOverlap(path_, req->entry.key)) {
      AdoptEntryLocked(req->entry);
      ack.installed = 1;
      if (req->forward_to_buddies != 0) buddies_to_notify = buddies_;
    }
  }
  // Fan out to buddies without holding the lock; the forwarded request must not
  // fan out again (the buddy lists of replicas largely coincide).
  if (!buddies_to_notify.empty()) {
    PublishRequest forward;
    forward.entry = req->entry;
    forward.forward_to_buddies = 0;
    const std::string bytes = EncodePublishRequest(forward);
    for (const std::string& buddy : buddies_to_notify) {
      if (CallWithRetry(buddy, bytes, ctx).ok()) ++ack.buddies_notified;
    }
  }
  return EncodePublishAck(ack);
}

std::string PGridNode::HandleCommit(const std::string& from,
                                    const std::string& request) {
  Result<CommitRequest> req = DecodeCommitRequest(request);
  if (!req.ok()) return EncodeError(req.status().ToString());
  std::lock_guard<std::mutex> lock(mu_);
  const size_t level = req->level;
  if (level < 1 || level > path_.length()) {
    return EncodeError("commit level out of range");
  }
  // Only accept references that satisfy the Sec. 2 property: the committer's bit
  // at `level` must be the complement of ours. (Our own bits never change once
  // set, so this check cannot race.)
  if (req->bit != static_cast<uint8_t>(ComplementBit(path_.bit(level - 1)))) {
    return EncodeError("commit bit does not complement ours");
  }
  std::vector<std::string>& refs = refs_[level - 1];
  if (std::find(refs.begin(), refs.end(), from) == refs.end()) {
    if (refs.size() < config_.refmax) {
      refs.push_back(from);
    } else {
      // Full: replace a random entry, keeping the reference set fresh.
      refs[rng_.UniformIndex(refs.size())] = from;
    }
  }
  return EncodeCommitAck();
}

std::string PGridNode::HandleEntryPush(const std::string& request) {
  Result<EntryPushRequest> req = DecodeEntryPushRequest(request);
  if (!req.ok()) return EncodeError(req.status().ToString());
  EntryPushResponse resp;
  std::lock_guard<std::mutex> lock(mu_);
  for (const WireEntry& e : req->entries) {
    if (PathsOverlap(path_, e.key)) {
      AdoptEntryLocked(e);
    } else {
      resp.rejected.push_back(e);
    }
  }
  return EncodeEntryPushResponse(resp);
}

std::string PGridNode::HandleExchange(const std::string& from,
                                      const std::string& request,
                                      const obs::TraceContext& ctx) {
  (void)from;
  Result<ExchangeRequest> reqr = DecodeExchangeRequest(request);
  if (!reqr.ok()) return EncodeError(reqr.status().ToString());
  const ExchangeRequest& req = *reqr;
  if (req.initiator == address_) return EncodeError("self exchange");

  ExchangeResponse resp;
  resp.epoch = req.epoch;
  std::vector<std::string> my_recursion_targets;
  uint32_t depth = req.depth;

  // Initiator's refs by level for easy lookup.
  auto refs1_at = [&req](size_t level) -> std::vector<std::string> {
    for (const WireRefLevel& rl : req.refs) {
      if (rl.level == level) return rl.addresses;
    }
    return {};
  };

  c_exchanges_served_->Increment();
  {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t lc = req.path.CommonPrefixLength(path_);
    const size_t l1 = req.path.length() - lc;
    const size_t l2 = path_.length() - lc;

    if (lc > 0) {
      // Cross-pollinate level-lc references (both sides have them).
      std::vector<std::string> mine = refs_[lc - 1];
      std::vector<std::string> theirs = refs1_at(lc);
      refs_[lc - 1] = SampleRefsLocked(mine, theirs, address_);
      WireRefLevel update;
      update.level = static_cast<uint32_t>(lc);
      update.addresses = SampleRefsLocked(std::move(mine), theirs, req.initiator);
      resp.ref_updates.push_back(std::move(update));
    }

    if (l1 == 0 && l2 == 0 && lc < config_.maxl) {
      // Case 1: identical paths below maxl. Randomize who takes which bit so the
      // initiator role carries no systematic bias. Our reference to the initiator
      // is NOT installed yet: the initiator may discard the directive (epoch
      // race); it confirms its new bit with a commit message (HandleCommit).
      const int my_bit = rng_.Bit();
      path_.PushBack(my_bit);
      refs_.emplace_back();
      ++epoch_;
      resp.append_bits.PushBack(ComplementBit(my_bit));
      WireRefLevel update;
      update.level = static_cast<uint32_t>(lc + 1);
      update.addresses = {address_};
      resp.ref_updates.push_back(std::move(update));
    } else if (l1 == 0 && l2 > 0 && lc < config_.maxl) {
      // Case 2: initiator's path is a prefix of ours -- it specializes opposite to
      // our next bit. As in case 1, we only learn about it as a reference once it
      // commits.
      resp.append_bits.PushBack(ComplementBit(path_.bit(lc)));
      WireRefLevel update;
      update.level = static_cast<uint32_t>(lc + 1);
      update.addresses = {address_};
      resp.ref_updates.push_back(std::move(update));
    } else if (l1 > 0 && l2 == 0 && lc < config_.maxl) {
      // Case 3: we specialize opposite to the initiator's next bit.
      path_.PushBack(ComplementBit(req.path.bit(lc)));
      refs_.push_back({req.initiator});
      ++epoch_;
      WireRefLevel update;
      update.level = static_cast<uint32_t>(lc + 1);
      update.addresses = SampleRefsLocked({address_}, refs1_at(lc + 1), req.initiator);
      resp.ref_updates.push_back(std::move(update));
    } else if (l1 > 0 && l2 > 0 && depth < config_.recmax) {
      // Case 4: diverging paths -- refer the initiator to our references on its
      // side, and (after releasing the lock) exchange with its references on ours.
      std::vector<std::string> referrals = refs_[lc];
      RemoveAddr(&referrals, req.initiator);
      resp.referrals = rng_.SampleWithoutReplacement(
          std::move(referrals),
          config_.recursion_fanout > 0 ? config_.recursion_fanout : config_.refmax);
      std::vector<std::string> mine = refs1_at(lc + 1);
      RemoveAddr(&mine, address_);
      my_recursion_targets = rng_.SampleWithoutReplacement(
          std::move(mine),
          config_.recursion_fanout > 0 ? config_.recursion_fanout : config_.refmax);
    } else if (l1 == 0 && l2 == 0) {
      // Replica case: identical complete paths at maxl -- become buddies and give
      // the initiator everything we index (its push completes the sync).
      if (req.initiator != address_ &&
          std::find(buddies_.begin(), buddies_.end(), req.initiator) ==
              buddies_.end()) {
        buddies_.push_back(req.initiator);
      }
      resp.buddy = 1;
      resp.entries = entries_;
    }

    // Data reconciliation: hand the initiator whatever we hold that belongs on its
    // side now (it applies the same logic after applying the directives).
    if (resp.buddy == 0) {
      KeyPath initiator_path = req.path.Concat(resp.append_bits);
      std::vector<WireEntry> drained = DrainNonMatchingLocked();
      for (WireEntry& e : drained) {
        if (PathsOverlap(initiator_path, e.key)) {
          resp.entries.push_back(std::move(e));
        } else {
          foreign_.push_back(std::move(e));
        }
      }
    }
  }

  // Responder-side case-4 recursion, outside the lock.
  for (const std::string& target : my_recursion_targets) {
    (void)MeetWithDepth(target, depth + 1, ctx);
  }
  return EncodeExchangeResponse(resp);
}

// ---- client side ----

Status PGridNode::MeetWith(const std::string& peer) { return MeetWithDepth(peer, 0); }

Status PGridNode::MeetWithDepth(const std::string& peer, uint32_t depth,
                                const obs::TraceContext& parent) {
  if (peer == address_) return Status::OK();
  obs::TraceSpan span(trace_, "node.meet", parent, "peer=" + peer);
  // Downstream context: our meet span if we record, else the inherited one so a
  // remote trace keeps flowing through recursion on an untraced node.
  const obs::TraceContext ctx = trace_ != nullptr ? span.context() : parent;
  ExchangeRequest req;
  req.initiator = address_;
  req.depth = depth;
  c_exchanges_initiated_->Increment();
  {
    std::lock_guard<std::mutex> lock(mu_);
    req.epoch = epoch_;
    req.path = path_;
    for (size_t level = 1; level <= refs_.size(); ++level) {
      WireRefLevel rl;
      rl.level = static_cast<uint32_t>(level);
      rl.addresses = refs_[level - 1];
      req.refs.push_back(std::move(rl));
    }
  }

  Result<std::string> raw = CallWithRetry(peer, EncodeExchangeRequest(req), ctx);
  if (!raw.ok()) return raw.status();
  Result<MsgType> type = PeekType(*raw);
  if (!type.ok() || *type != MsgType::kExchangeResp) {
    return Status::Internal("bad exchange response from " + peer);
  }
  Result<ExchangeResponse> respr = DecodeExchangeResponse(*raw);
  if (!respr.ok()) return respr.status();
  const ExchangeResponse& resp = *respr;

  std::vector<WireEntry> push;
  std::vector<CommitRequest> commits;
  bool became_buddy = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (resp.epoch != epoch_) {
      // Our state changed while the exchange was in flight (another meeting ran
      // concurrently); the directives are stale. Dropping a randomized meeting is
      // harmless -- and because we never commit, the responder installs no
      // reference to us either.
      return Status::OK();
    }
    if (!resp.append_bits.empty() &&
        path_.length() + resp.append_bits.length() > config_.maxl) {
      return Status::OK();  // would exceed maxl: stale or malicious; ignore
    }
    for (size_t i = 0; i < resp.append_bits.length(); ++i) {
      path_.PushBack(resp.append_bits.bit(i));
      refs_.emplace_back();
      CommitRequest commit;
      commit.level = static_cast<uint32_t>(path_.length());
      commit.bit = static_cast<uint8_t>(resp.append_bits.bit(i));
      commits.push_back(commit);
    }
    if (!resp.append_bits.empty()) ++epoch_;
    for (const WireRefLevel& rl : resp.ref_updates) {
      if (rl.level >= 1 && rl.level <= refs_.size()) {
        std::vector<std::string> addrs = rl.addresses;
        RemoveAddr(&addrs, address_);
        if (addrs.size() > config_.refmax) addrs.resize(config_.refmax);
        refs_[rl.level - 1] = std::move(addrs);
      }
    }
    if (resp.buddy != 0 &&
        std::find(buddies_.begin(), buddies_.end(), peer) == buddies_.end()) {
      buddies_.push_back(peer);
      became_buddy = true;
    }
    for (const WireEntry& e : resp.entries) {
      if (PathsOverlap(path_, e.key)) {
        AdoptEntryLocked(e);
      } else {
        foreign_.push_back(e);
      }
    }
    push = DrainNonMatchingLocked();
    if (became_buddy) {
      // Complete the bidirectional sync: give the new buddy our index.
      push.insert(push.end(), entries_.begin(), entries_.end());
    }
  }

  // Confirm the applied append directives so the responder may now reference us
  // (see HandleCommit).
  for (const CommitRequest& commit : commits) {
    (void)CallWithRetry(peer, EncodeCommitRequest(commit), ctx);
  }
  if (!push.empty()) PushEntries(peer, std::move(push), ctx);
  PersistState();
  for (const std::string& referral : resp.referrals) {
    (void)MeetWithDepth(referral, depth + 1, ctx);
  }
  return Status::OK();
}

void PGridNode::PushEntries(const std::string& peer, std::vector<WireEntry> entries,
                            const obs::TraceContext& ctx) {
  EntryPushRequest req;
  req.entries = std::move(entries);
  Result<std::string> raw = CallWithRetry(peer, EncodeEntryPushRequest(req), ctx);
  std::vector<WireEntry> rejected;
  if (raw.ok()) {
    Result<EntryPushResponse> resp = DecodeEntryPushResponse(*raw);
    if (resp.ok()) {
      rejected = std::move(resp->rejected);
    } else {
      rejected = std::move(req.entries);
    }
  } else {
    rejected = std::move(req.entries);
  }
  if (rejected.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (WireEntry& e : rejected) {
    if (PathsOverlap(path_, e.key)) {
      AdoptEntryLocked(e);
    } else {
      foreign_.push_back(std::move(e));
    }
  }
}

Status PGridNode::Publish(const DataItem& item) {
  obs::TraceSpan span(trace_, "node.publish");
  const obs::TraceContext ctx = trace_ != nullptr ? span.context() : obs::TraceContext{};
  {
    std::lock_guard<std::mutex> lock(mu_);
    store_.Upsert(item);
  }
  PersistState();
  WireEntry entry;
  entry.holder = address_;
  entry.item_id = item.id;
  entry.key = item.key;
  entry.version = item.version;

  Result<RouteResult> routed = Route(item.key, ctx);
  if (!routed.ok()) return routed.status();
  const std::string responder = routed->responder;
  if (responder == address_) {
    std::vector<std::string> buddies_copy;
    {
      std::lock_guard<std::mutex> lock(mu_);
      AdoptEntryLocked(entry);
      buddies_copy = buddies_;
    }
    PublishRequest forward;
    forward.entry = entry;
    forward.forward_to_buddies = 0;
    const std::string bytes = EncodePublishRequest(forward);
    for (const std::string& buddy : buddies_copy) {
      (void)CallWithRetry(buddy, bytes, ctx);
    }
    PersistState();
    return Status::OK();
  }
  PublishRequest preq;
  preq.entry = entry;
  preq.forward_to_buddies = 1;
  Result<std::string> raw = CallWithRetry(responder, EncodePublishRequest(preq), ctx);
  if (!raw.ok()) return raw.status();
  Result<PublishAck> ack = DecodePublishAck(*raw);
  if (!ack.ok()) return ack.status();
  if (ack->installed == 0) {
    return Status::Internal("responsible peer refused the entry");
  }
  return Status::OK();
}

Result<PGridNode::RouteResult> PGridNode::Route(const KeyPath& key,
                                                const obs::TraceContext& parent) {
  obs::TraceSpan span(trace_, "node.route", parent, "node=" + address_);
  if (trace_ != nullptr) span.Event("node.route.key", key.ToString());
  // Depth-first iterative routing: each frame is a candidate address plus the
  // query suffix/consumed level to present to it.
  struct Frame {
    std::string address;
    KeyPath remaining;
    uint32_t consumed;
  };
  std::vector<Frame> stack;

  {
    std::lock_guard<std::mutex> lock(mu_);
    LocalMatch m = MatchLocked(key, 0);
    if (m.found) {
      h_route_attempts_->Record(0);
      return RouteResult{address_, std::move(m.matching)};
    }
    std::vector<std::string> candidates = m.candidates;
    rng_.Shuffle(&candidates);
    for (const std::string& c : candidates) {
      stack.push_back(Frame{c, m.remaining, m.consumed});
    }
  }

  size_t attempts = 0;
  while (!stack.empty() && attempts < config_.max_route_attempts) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    ++attempts;
    QueryRequest qreq;
    qreq.key = frame.remaining;
    qreq.consumed = frame.consumed;
    // Per-hop client span: the receiving node's node.serve.query span stitches
    // underneath this one, so the reconstructed tree shows each hop's server
    // time inside the client's RPC time.
    Result<std::string> raw = [&]() -> Result<std::string> {
      obs::TraceSpan hop(trace_, "node.rpc.query", span.context(),
                         "to=" + frame.address);
      return CallWithRetry(frame.address, EncodeQueryRequest(qreq), hop.context());
    }();
    if (!raw.ok()) {  // offline candidate: backtrack
      c_route_offline_skips_->Increment();
      span.Event("node.route.offline_skip", frame.address);
      continue;
    }
    Result<MsgType> type = PeekType(*raw);
    if (!type.ok()) continue;
    if (*type == MsgType::kQueryRespFound) {
      Result<QueryResponseFound> resp = DecodeQueryResponseFound(*raw);
      if (!resp.ok()) continue;
      h_route_attempts_->Record(attempts);
      return RouteResult{std::move(resp->responder), std::move(resp->entries)};
    }
    if (*type == MsgType::kQueryRespForward) {
      Result<QueryResponseForward> resp = DecodeQueryResponseForward(*raw);
      if (!resp.ok()) continue;
      std::vector<std::string> candidates = std::move(resp->candidates);
      {
        std::lock_guard<std::mutex> lock(mu_);
        rng_.Shuffle(&candidates);
      }
      for (const std::string& c : candidates) {
        stack.push_back(Frame{c, resp->remaining, resp->consumed});
      }
      continue;
    }
    // Miss or error: backtrack to the next candidate.
    c_route_backtracks_->Increment();
    span.Event("node.route.backtrack", frame.address);
  }
  h_route_attempts_->Record(attempts);
  return Status::NotFound("no responsible peer reachable for key " + key.ToString());
}

Result<std::string> PGridNode::FetchPeerStats(const std::string& peer) {
  PGRID_ASSIGN_OR_RETURN(std::string raw, CallWithRetry(peer, EncodeStatsRequest()));
  Result<MsgType> type = PeekType(raw);
  if (!type.ok() || *type != MsgType::kStatsResp) {
    return Status::Internal("bad stats response from " + peer);
  }
  PGRID_ASSIGN_OR_RETURN(StatsResponse resp, DecodeStatsResponse(raw));
  return std::move(resp.json);
}

Result<std::vector<WireEntry>> PGridNode::Search(const KeyPath& key) {
  PGRID_ASSIGN_OR_RETURN(RouteResult route, Route(key));
  return std::move(route.entries);
}

Result<std::string> PGridNode::RouteToResponsible(const KeyPath& key) {
  PGRID_ASSIGN_OR_RETURN(RouteResult route, Route(key));
  return std::move(route.responder);
}

Result<ProbeResponse> PGridNode::Probe(const std::string& peer,
                                       const obs::TraceContext& ctx) {
  c_probes_sent_->Increment();
  obs::TraceSpan span(trace_, "node.probe", ctx, "peer=" + peer);
  PGRID_ASSIGN_OR_RETURN(
      std::string raw, CallWithRetry(peer, EncodeProbeRequest(), span.context()));
  Result<MsgType> type = PeekType(raw);
  if (!type.ok() || *type != MsgType::kProbeResp) {
    return Status::Internal("bad probe response from " + peer);
  }
  return DecodeProbeResponse(raw);
}

size_t PGridNode::MaintainReferences() {
  obs::TraceSpan span(trace_, "node.maintain", obs::TraceContext{},
                      "node=" + address_);
  const obs::TraceContext ctx = span.context();
  // Probe everyone we know. Delivered probes clear suspicion; failures count
  // toward it, and the threshold eviction happens inside the call funnel
  // (NoteCallOutcome), so crashed peers drain out of the reference levels.
  for (const std::string& peer : KnownPeers()) (void)Probe(peer, ctx);

  // Refill: snapshot which levels sit below refmax, then recruit per level by
  // routing a lookup into the complementary subtree.
  KeyPath my_path;
  std::vector<size_t> underfull;
  {
    std::lock_guard<std::mutex> lock(mu_);
    my_path = path_;
    for (size_t level = 1; level <= refs_.size(); ++level) {
      if (refs_[level - 1].size() < config_.refmax) underfull.push_back(level);
    }
  }
  size_t recruited = 0;
  for (size_t level : underfull) {
    KeyPath key = my_path.Prefix(level - 1).Append(ComplementBit(my_path.bit(level - 1)));
    {
      std::lock_guard<std::mutex> lock(mu_);
      while (key.length() < config_.maxl) key.PushBack(rng_.Bit());
    }
    Result<RouteResult> routed = Route(key, ctx);
    if (!routed.ok() || routed->responder == address_) continue;
    const std::string responder = routed->responder;
    // Verify the reference property against the responder's *probed* path
    // before adopting: routing found it responsible for a complementary key,
    // but only its own path statement proves the level bit.
    Result<ProbeResponse> info = Probe(responder, ctx);
    if (!info.ok()) continue;
    std::lock_guard<std::mutex> lock(mu_);
    if (level > path_.length() || level > refs_.size()) continue;
    if (info->path.length() < level ||
        path_.CommonPrefixLength(info->path) < level - 1 ||
        info->path.bit(level - 1) != ComplementBit(path_.bit(level - 1))) {
      continue;
    }
    std::vector<std::string>& refs = refs_[level - 1];
    if (refs.size() < config_.refmax &&
        std::find(refs.begin(), refs.end(), responder) == refs.end()) {
      refs.push_back(responder);
      c_refs_recruited_->Increment();
      ++recruited;
    }
  }
  if (recruited > 0) PersistState();
  return recruited;
}

}  // namespace net
}  // namespace pgrid
