// Binary wire format for the networked P-Grid protocol.
//
// Little-endian fixed-width integers, length-prefixed strings, and bit-packed key
// paths. Decoding is defensive: every read validates remaining length and returns
// Status on truncation or malformed input (network input is untrusted).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "key/key_path.h"
#include "util/result.h"

namespace pgrid {
namespace net {

/// Appends primitive values to a byte buffer.
class ByteWriter {
 public:
  void WriteU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void WriteU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }

  void WriteU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }

  /// Length-prefixed (u32) byte string.
  void WriteString(std::string_view s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }

  /// Bit length (u32) followed by ceil(len/8) packed bytes, LSB-first per byte.
  void WriteKeyPath(const KeyPath& k);

  /// A list of strings (u32 count + each length-prefixed).
  void WriteStringList(const std::vector<std::string>& v) {
    WriteU32(static_cast<uint32_t>(v.size()));
    for (const std::string& s : v) WriteString(s);
  }

  const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Sequentially decodes primitive values; every method checks bounds.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<std::string> ReadString();
  Result<KeyPath> ReadKeyPath();
  Result<std::vector<std::string>> ReadStringList();

  /// Consumes and returns all bytes not yet read. Used by envelope formats
  /// (e.g. the traced-RPC wrapper) whose payload is simply "the rest".
  std::string ReadRest() {
    std::string out(data_.substr(pos_));
    pos_ = data_.size();
    return out;
  }

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n) {
    if (remaining() < n) {
      return Status::InvalidArgument("truncated message: need " + std::to_string(n) +
                                     " bytes, have " + std::to_string(remaining()));
    }
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

/// Sanity cap on decoded collection sizes (strings, lists): rejects hostile length
/// prefixes before allocation.
inline constexpr uint32_t kMaxWireCollection = 1u << 20;

}  // namespace net
}  // namespace pgrid
