#include "net/retry.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "util/macros.h"

namespace pgrid {
namespace net {

Status RetryConfig::Validate() const {
  if (max_attempts == 0) {
    return Status::InvalidArgument("retry max_attempts must be >= 1");
  }
  if (backoff_multiplier < 1.0) {
    return Status::InvalidArgument("retry backoff_multiplier must be >= 1.0");
  }
  if (jitter < 0.0 || jitter > 1.0) {
    return Status::InvalidArgument("retry jitter must be in [0, 1]");
  }
  return Status::OK();
}

RetryPolicy::RetryPolicy(const RetryConfig& config, uint64_t seed,
                         obs::MetricsRegistry* registry)
    : config_(config),
      rng_(seed),
      budget_left_(config.retry_budget) {
  PGRID_CHECK(config.Validate().ok());
  if (registry == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_metrics_.get();
  }
  metrics_ = registry;
  c_retries_ = metrics_->GetCounter("rpc.retries");
  c_exhausted_ = metrics_->GetCounter("rpc.retry_exhausted");
  c_budget_exhausted_ = metrics_->GetCounter("rpc.retry_budget_exhausted");
  c_deadline_ = metrics_->GetCounter("rpc.retry_deadline_exceeded");
  h_backoff_ms_ = metrics_->GetHistogram("rpc.retry_backoff_ms", obs::BackoffBoundsMs());
  PGRID_CHECK(c_retries_ && c_exhausted_ && c_budget_exhausted_ && c_deadline_ &&
              h_backoff_ms_);
}

uint64_t RetryPolicy::NextBackoffMs(size_t retry_index) {
  double backoff = static_cast<double>(config_.initial_backoff_ms) *
                   std::pow(config_.backoff_multiplier,
                            static_cast<double>(retry_index));
  backoff = std::min(backoff, static_cast<double>(config_.max_backoff_ms));
  if (config_.jitter > 0.0) {
    std::lock_guard<std::mutex> lock(mu_);
    backoff *= 1.0 - config_.jitter * rng_.UniformDouble();
  }
  return static_cast<uint64_t>(backoff + 0.5);
}

Result<std::string> RetryPolicy::Call(RpcTransport* transport, const std::string& to,
                                      const std::string& from,
                                      const std::string& request) {
  const auto start = std::chrono::steady_clock::now();
  uint64_t backoff_elapsed_ms = 0;  // virtual time spent waiting so far
  Status last = Status::Unavailable("no attempt made");
  for (size_t attempt = 0;; ++attempt) {
    Result<std::string> result = transport->Call(to, from, request);
    if (result.ok() || !IsRetryable(result.status())) return result;
    last = result.status();
    if (attempt + 1 >= config_.max_attempts) {
      if (config_.max_attempts > 1) c_exhausted_->Increment();
      return last;
    }
    const uint64_t backoff = NextBackoffMs(attempt);
    if (config_.deadline_ms > 0) {
      const uint64_t wall_ms = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      if (backoff_elapsed_ms + backoff > config_.deadline_ms ||
          wall_ms + backoff > config_.deadline_ms) {
        c_deadline_->Increment();
        return Status::DeadlineExceeded(
            "call to " + to + " abandoned after " +
            std::to_string(backoff_elapsed_ms) + " ms of backoff (deadline " +
            std::to_string(config_.deadline_ms) + " ms): " + last.message());
      }
    }
    if (config_.retry_budget > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      if (budget_left_ == 0) {
        c_budget_exhausted_->Increment();
        return last;
      }
      --budget_left_;
    }
    backoff_elapsed_ms += backoff;
    h_backoff_ms_->Record(backoff);
    c_retries_->Increment();
    if (config_.sleep_between_attempts && backoff > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
  }
}

}  // namespace net
}  // namespace pgrid
