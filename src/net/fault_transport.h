// Deterministic fault injection for any RpcTransport.
//
// FaultInjectingTransport decorates an inner transport with a seeded,
// per-address-pattern rule table. Every failure scenario -- "drop 30% of all
// calls", "fail the first 3 calls to node:7", "partition {A,B} from {C,D}
// between virtual times 100 and 200", "answer node:2 with ResourceExhausted" --
// is expressed as a value (FaultRule) instead of ad-hoc test plumbing, so the
// exact drop/delay/duplicate sequence is reproducible from the seed and the
// call sequence alone.
//
// Virtual time: the transport keeps a virtual clock that advances by one unit
// per Call() (and by `delay_units` when a delay rule fires); tests can advance
// it further with AdvanceTime(). Rule windows ([not_before, not_after]) are
// expressed in this clock, which makes schedules like "partition during calls
// 100..200" deterministic without wall-clock sleeps.
//
// Rule evaluation: outages first (a pinned-down node drops everything), then
// rules in insertion order; the first rule that *fires* decides the call's
// fate. A rule fires when its address patterns and time window match, its
// skip/max match window accepts the call, and its probability draw (from the
// transport's seeded RNG) passes. Calls that no rule claims are forwarded to
// the inner transport untouched -- with no rules armed the decorator is fully
// transparent.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/transport.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace pgrid {
namespace net {

/// What a firing rule does to the call.
enum class FaultAction {
  kDrop,       ///< fail with Unavailable, the handler never runs
  kDelay,      ///< deliver, but advance virtual time (and optionally sleep)
  kDuplicate,  ///< deliver twice (the second response is discarded)
  kError,      ///< fail with a configured status, the handler never runs
};

/// One entry of the rule table. Default-constructed fields make the rule match
/// everything, always, with certainty -- tighten whichever dimensions the
/// scenario needs.
struct FaultRule {
  /// Glob patterns over the destination / caller address ('*' matches any run
  /// of characters; everything else is literal).
  std::string to = "*";
  std::string from = "*";

  /// If non-empty, destination membership overrides `to` (used by Partition).
  std::vector<std::string> to_any_of;
  /// If non-empty, caller membership overrides `from`.
  std::vector<std::string> from_any_of;

  /// Probability that a matching call actually fires the rule. Draws come from
  /// the transport's seeded RNG, in rule order, so the sequence is
  /// reproducible.
  double probability = 1.0;

  /// Virtual-time window (inclusive) in which the rule is armed.
  uint64_t not_before = 0;
  uint64_t not_after = UINT64_MAX;

  /// Let the first `skip_matches` matching calls through, then fire on at most
  /// `max_matches` of them: "fail calls 4..6 to node:3" is skip=3, max=3.
  uint64_t skip_matches = 0;
  uint64_t max_matches = UINT64_MAX;

  FaultAction action = FaultAction::kDrop;

  /// kDelay: virtual-time units the delivery consumes.
  uint64_t delay_units = 1;
  /// kDelay: optional real sleep (for wall-clock stacks like TcpTransport).
  /// Keep 0 in deterministic tests.
  uint64_t delay_sleep_ms = 0;

  /// kError: status the call fails with.
  StatusCode error_code = StatusCode::kUnavailable;
  std::string error_message = "injected error";
};

/// Matches `addr` against a '*'-glob `pattern`.
bool FaultPatternMatches(const std::string& pattern, const std::string& addr);

/// RpcTransport decorator applying a seeded fault-rule table.
class FaultInjectingTransport : public RpcTransport {
 public:
  /// `inner` must outlive this transport. `registry` hosts the fault.* metrics;
  /// null lets the transport own a private one.
  explicit FaultInjectingTransport(RpcTransport* inner, uint64_t seed = 0,
                                   obs::MetricsRegistry* registry = nullptr);

  Status Serve(const std::string& address, Handler handler) override;
  void StopServing(const std::string& address) override;
  Result<std::string> Call(const std::string& to, const std::string& from,
                           const std::string& request) override;

  /// Installs a rule; returns its id (for RemoveRule).
  uint64_t AddRule(FaultRule rule);
  /// Removes one rule; false if the id is unknown (already removed).
  bool RemoveRule(uint64_t id);
  /// Removes all rules (outages are kept; see ClearOutage).
  void ClearRules();

  // ---- scenario conveniences (each returns the id of the rule it adds) ----

  /// Fails the first `n` calls to addresses matching `to`.
  uint64_t DropFirst(const std::string& to, uint64_t n);
  /// Drops each call to addresses matching `to` with probability `p`.
  uint64_t DropWithProbability(const std::string& to, double p);
  /// Drops all traffic between the two groups (both directions) while the
  /// virtual clock is within [t1, t2]. Returns the ids of the two rules added.
  std::pair<uint64_t, uint64_t> Partition(const std::vector<std::string>& group_a,
                                          const std::vector<std::string>& group_b,
                                          uint64_t t1 = 0,
                                          uint64_t t2 = UINT64_MAX);

  /// Named multi-group partition: installs one drop rule per ordered pair of
  /// distinct groups, so traffic between members of *different* groups is
  /// dropped while intra-group traffic and traffic involving unlisted
  /// addresses flows. Empty groups are skipped (an empty any_of list would
  /// fall back to the match-all glob). Returns a partition id whose rules
  /// HealPartition removes atomically -- this is the first-class partition the
  /// scenario `partition` step drives, as opposed to the time-window form.
  uint64_t PartitionGroups(const std::vector<std::vector<std::string>>& groups,
                           uint64_t t1 = 0, uint64_t t2 = UINT64_MAX);
  /// Removes every rule one PartitionGroups registration installed; false if
  /// the id is unknown (already healed, or wiped by ClearRules).
  bool HealPartition(uint64_t partition_id);

  /// Total outage of one address until ClearOutage (checked before the rules).
  void InjectOutage(const std::string& address);
  void ClearOutage(const std::string& address);

  /// Current virtual time (units: calls seen, plus fired delays, plus manual
  /// advances).
  uint64_t virtual_now() const;
  /// Manually advances the virtual clock (scripted schedules).
  void AdvanceTime(uint64_t delta);

  // ---- deterministic counters (also exported as fault.* metrics) ----
  uint64_t delivered_calls() const { return c_delivered_->value(); }
  uint64_t dropped_calls() const { return c_drops_->value(); }
  uint64_t delayed_calls() const { return c_delays_->value(); }
  uint64_t duplicated_calls() const { return c_duplicates_->value(); }
  uint64_t injected_errors() const { return c_errors_->value(); }

  /// The registry holding the fault.* instruments (shared or owned).
  obs::MetricsRegistry& metrics() { return *metrics_; }

 private:
  struct ArmedRule {
    uint64_t id = 0;
    FaultRule rule;
    uint64_t matched = 0;  // statically-matching calls seen so far
  };

  /// The action to apply to one call, decided under the lock.
  struct Decision {
    FaultAction action;
    const FaultRule* rule = nullptr;  // valid only while mu_ is held
    Status failure;                   // for kDrop / kError
    uint64_t sleep_ms = 0;            // for kDelay
  };

  RpcTransport* inner_;

  mutable std::mutex mu_;
  std::vector<ArmedRule> rules_;
  std::unordered_set<std::string> outages_;
  // partition id -> rule ids installed by PartitionGroups.
  std::unordered_map<uint64_t, std::vector<uint64_t>> partitions_;
  uint64_t next_partition_id_ = 1;
  uint64_t next_rule_id_ = 1;
  uint64_t now_ = 0;
  Rng rng_;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // set iff none was passed
  obs::MetricsRegistry* metrics_;
  obs::Counter* c_delivered_;
  obs::Counter* c_drops_;
  obs::Counter* c_delays_;
  obs::Counter* c_duplicates_;
  obs::Counter* c_errors_;
  obs::Histogram* h_delay_units_;
};

}  // namespace net
}  // namespace pgrid
