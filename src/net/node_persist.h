// Durable storage for a networked node's protocol state.
//
// The address-flavored sibling of storage/persist.h: PGridNode state speaks
// transport addresses (strings) where the simulator speaks PeerIds, so it gets
// its own image type and record codec over the same WAL machinery
// (storage/wal.h) and the same snapshot discipline (canonical body, CRC-32
// trailer, atomic tmp + rename, shadow-diff commits, replay-then-truncate
// recovery). See docs/storage.md for the shared protocol.
//
// One NodePersistence instance persists one node; files live under
// StorageConfig::dir as node-<sanitized address>.{snap,wal}.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "key/key_path.h"
#include "net/protocol.h"
#include "storage/data_item.h"
#include "storage/storage_config.h"
#include "storage/wal.h"
#include "util/result.h"

namespace pgrid {
namespace net {

/// Point-in-time copy of the persistent slice of a PGridNode's state. (Runtime
/// state -- suspicion counters, serving flag -- is deliberately not durable:
/// after a restart the failure detector must start from a clean slate.)
struct NodeImage {
  KeyPath path;
  std::vector<std::vector<std::string>> refs;  ///< refs[i] = level i+1
  std::vector<std::string> buddies;
  std::vector<WireEntry> entries;
  std::vector<WireEntry> foreign;
  std::vector<DataItem> items;  ///< the local DataStore's contents
  uint64_t epoch = 0;

  friend bool operator==(const NodeImage&, const NodeImage&) = default;
};

/// Persists and recovers one node's NodeImage (snapshot + WAL delta).
class NodePersistence {
 public:
  /// `config.dir` must be non-empty; the directory is created if missing.
  NodePersistence(storage::StorageConfig config, std::string address);

  NodePersistence(const NodePersistence&) = delete;
  NodePersistence& operator=(const NodePersistence&) = delete;

  /// Baselines: full snapshot of `image`, fresh WAL. Also the re-baseline after
  /// a successful Recover().
  Status Attach(const NodeImage& image);

  /// Appends one record per difference between `image` and the last persisted
  /// state; returns the record count. Compacts automatically after
  /// StorageConfig::compact_every commits (0 = never). Requires Attach().
  Result<uint64_t> Commit(const NodeImage& image);

  /// Rewrites the snapshot from the shadow and truncates the WAL.
  Status Compact();

  /// Snapshot, then WAL longest-valid-prefix replay, then torn-tail
  /// truncation. Works without a prior Attach in this process.
  Result<NodeImage> Recover();

  /// True iff a snapshot file exists on disk for this address.
  bool HasState() const;

  std::string SnapshotPath() const;
  std::string WalPath() const;

 private:
  Status WriteSnapshot(const NodeImage& image);
  Result<NodeImage> ReadSnapshot() const;

  storage::StorageConfig config_;
  std::string stem_;  ///< address with non-filename characters mapped to '_'
  NodeImage shadow_;
  storage::WalWriter wal_;
  bool attached_ = false;
  uint64_t commits_since_compact_ = 0;
};

}  // namespace net
}  // namespace pgrid
