#include "net/inproc_transport.h"

namespace pgrid {
namespace net {

Status InProcTransport::Bus::Serve(const std::string& address, Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = handlers_.emplace(address, std::move(handler));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("address " + address + " already served");
  }
  return Status::OK();
}

void InProcTransport::Bus::StopServing(const std::string& address) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_.erase(address);
}

Result<std::string> InProcTransport::Bus::Call(const std::string& to,
                                               const std::string& from,
                                               const std::string& request) {
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      return Status::Unavailable("no node serving " + to);
    }
    handler = it->second;  // copy so the handler runs without the registry lock
    ++delivered_;
  }
  return handler(from, request);
}

uint64_t InProcTransport::Bus::delivered_calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delivered_;
}

InProcTransport::InProcTransport(double loss_probability, uint64_t seed)
    : faults_(&bus_, seed) {
  if (loss_probability > 0.0) {
    faults_.DropWithProbability("*", loss_probability);
  }
}

Status InProcTransport::Serve(const std::string& address, Handler handler) {
  return faults_.Serve(address, std::move(handler));
}

void InProcTransport::StopServing(const std::string& address) {
  faults_.StopServing(address);
}

Result<std::string> InProcTransport::Call(const std::string& to,
                                          const std::string& from,
                                          const std::string& request) {
  return faults_.Call(to, from, request);
}

void InProcTransport::InjectOutage(const std::string& address) {
  faults_.InjectOutage(address);
}

void InProcTransport::ClearOutage(const std::string& address) {
  faults_.ClearOutage(address);
}

uint64_t InProcTransport::delivered_calls() const { return bus_.delivered_calls(); }

}  // namespace net
}  // namespace pgrid
