#include "net/inproc_transport.h"

namespace pgrid {
namespace net {

InProcTransport::InProcTransport(double loss_probability, uint64_t seed)
    : loss_probability_(loss_probability), rng_(seed) {}

Status InProcTransport::Serve(const std::string& address, Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = handlers_.emplace(address, std::move(handler));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("address " + address + " already served");
  }
  return Status::OK();
}

void InProcTransport::StopServing(const std::string& address) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_.erase(address);
}

Result<std::string> InProcTransport::Call(const std::string& to,
                                          const std::string& from,
                                          const std::string& request) {
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (outages_.contains(to)) {
      return Status::Unavailable("injected outage at " + to);
    }
    if (loss_probability_ > 0.0 && rng_.Bernoulli(loss_probability_)) {
      return Status::Unavailable("message to " + to + " lost");
    }
    auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      return Status::Unavailable("no node serving " + to);
    }
    handler = it->second;  // copy so the handler runs without the registry lock
    ++delivered_;
  }
  return handler(from, request);
}

void InProcTransport::InjectOutage(const std::string& address) {
  std::lock_guard<std::mutex> lock(mu_);
  outages_.insert(address);
}

void InProcTransport::ClearOutage(const std::string& address) {
  std::lock_guard<std::mutex> lock(mu_);
  outages_.erase(address);
}

uint64_t InProcTransport::delivered_calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delivered_;
}

}  // namespace net
}  // namespace pgrid
