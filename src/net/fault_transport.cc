#include "net/fault_transport.h"

#include <chrono>
#include <thread>

#include "util/macros.h"

namespace pgrid {
namespace net {

bool FaultPatternMatches(const std::string& pattern, const std::string& addr) {
  // Iterative '*'-glob: on mismatch, backtrack to the last star and consume one
  // more address character.
  size_t p = 0, a = 0;
  size_t star = std::string::npos, star_a = 0;
  while (a < addr.size()) {
    if (p < pattern.size() && (pattern[p] == addr[a])) {
      ++p;
      ++a;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_a = a;
    } else if (star != std::string::npos) {
      p = star + 1;
      a = ++star_a;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

namespace {

bool AddrSideMatches(const std::string& pattern,
                     const std::vector<std::string>& any_of,
                     const std::string& addr) {
  if (!any_of.empty()) {
    for (const std::string& a : any_of) {
      if (a == addr) return true;
    }
    return false;
  }
  return FaultPatternMatches(pattern, addr);
}

}  // namespace

FaultInjectingTransport::FaultInjectingTransport(RpcTransport* inner, uint64_t seed,
                                                 obs::MetricsRegistry* registry)
    : inner_(inner), rng_(seed) {
  PGRID_CHECK(inner != nullptr);
  if (registry == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_metrics_.get();
  }
  metrics_ = registry;
  c_delivered_ = metrics_->GetCounter("fault.delivered");
  c_drops_ = metrics_->GetCounter("fault.drops");
  c_delays_ = metrics_->GetCounter("fault.delays");
  c_duplicates_ = metrics_->GetCounter("fault.duplicates");
  c_errors_ = metrics_->GetCounter("fault.errors");
  h_delay_units_ = metrics_->GetHistogram("fault.delay_units", obs::CountBounds());
  PGRID_CHECK(c_delivered_ && c_drops_ && c_delays_ && c_duplicates_ && c_errors_ &&
              h_delay_units_);
}

Status FaultInjectingTransport::Serve(const std::string& address, Handler handler) {
  return inner_->Serve(address, std::move(handler));
}

void FaultInjectingTransport::StopServing(const std::string& address) {
  inner_->StopServing(address);
}

uint64_t FaultInjectingTransport::AddRule(FaultRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  ArmedRule armed;
  armed.id = next_rule_id_++;
  armed.rule = std::move(rule);
  rules_.push_back(std::move(armed));
  return rules_.back().id;
}

bool FaultInjectingTransport::RemoveRule(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if (it->id == id) {
      rules_.erase(it);
      return true;
    }
  }
  return false;
}

void FaultInjectingTransport::ClearRules() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  partitions_.clear();
}

uint64_t FaultInjectingTransport::DropFirst(const std::string& to, uint64_t n) {
  FaultRule rule;
  rule.to = to;
  rule.max_matches = n;
  rule.action = FaultAction::kDrop;
  return AddRule(std::move(rule));
}

uint64_t FaultInjectingTransport::DropWithProbability(const std::string& to,
                                                      double p) {
  FaultRule rule;
  rule.to = to;
  rule.probability = p;
  rule.action = FaultAction::kDrop;
  return AddRule(std::move(rule));
}

std::pair<uint64_t, uint64_t> FaultInjectingTransport::Partition(
    const std::vector<std::string>& group_a, const std::vector<std::string>& group_b,
    uint64_t t1, uint64_t t2) {
  FaultRule a_to_b;
  a_to_b.from_any_of = group_a;
  a_to_b.to_any_of = group_b;
  a_to_b.not_before = t1;
  a_to_b.not_after = t2;
  a_to_b.action = FaultAction::kDrop;
  FaultRule b_to_a;
  b_to_a.from_any_of = group_b;
  b_to_a.to_any_of = group_a;
  b_to_a.not_before = t1;
  b_to_a.not_after = t2;
  b_to_a.action = FaultAction::kDrop;
  const uint64_t id1 = AddRule(std::move(a_to_b));
  const uint64_t id2 = AddRule(std::move(b_to_a));
  return {id1, id2};
}

uint64_t FaultInjectingTransport::PartitionGroups(
    const std::vector<std::vector<std::string>>& groups, uint64_t t1, uint64_t t2) {
  std::vector<uint64_t> rule_ids;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (groups[i].empty()) continue;
    for (size_t j = 0; j < groups.size(); ++j) {
      if (j == i || groups[j].empty()) continue;
      FaultRule rule;
      rule.from_any_of = groups[i];
      rule.to_any_of = groups[j];
      rule.not_before = t1;
      rule.not_after = t2;
      rule.action = FaultAction::kDrop;
      rule_ids.push_back(AddRule(std::move(rule)));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_partition_id_++;
  partitions_[id] = std::move(rule_ids);
  return id;
}

bool FaultInjectingTransport::HealPartition(uint64_t partition_id) {
  std::vector<uint64_t> rule_ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = partitions_.find(partition_id);
    if (it == partitions_.end()) return false;
    rule_ids = std::move(it->second);
    partitions_.erase(it);
  }
  for (uint64_t id : rule_ids) RemoveRule(id);
  return true;
}

void FaultInjectingTransport::InjectOutage(const std::string& address) {
  std::lock_guard<std::mutex> lock(mu_);
  outages_.insert(address);
}

void FaultInjectingTransport::ClearOutage(const std::string& address) {
  std::lock_guard<std::mutex> lock(mu_);
  outages_.erase(address);
}

uint64_t FaultInjectingTransport::virtual_now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

void FaultInjectingTransport::AdvanceTime(uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  now_ += delta;
}

Result<std::string> FaultInjectingTransport::Call(const std::string& to,
                                                  const std::string& from,
                                                  const std::string& request) {
  bool duplicate = false;
  uint64_t sleep_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t t = now_++;  // this call happens at time t
    if (outages_.contains(to)) {
      c_drops_->Increment();
      return Status::Unavailable("injected outage at " + to);
    }
    for (ArmedRule& armed : rules_) {
      const FaultRule& rule = armed.rule;
      if (t < rule.not_before || t > rule.not_after) continue;
      if (!AddrSideMatches(rule.to, rule.to_any_of, to)) continue;
      if (!AddrSideMatches(rule.from, rule.from_any_of, from)) continue;
      const uint64_t match_index = armed.matched++;
      if (match_index < rule.skip_matches) continue;
      if (match_index >= rule.skip_matches + rule.max_matches) continue;
      if (rule.probability < 1.0 && !rng_.Bernoulli(rule.probability)) continue;
      switch (rule.action) {
        case FaultAction::kDrop:
          c_drops_->Increment();
          return Status::Unavailable("fault: dropped call to " + to);
        case FaultAction::kError:
          c_errors_->Increment();
          return Status(rule.error_code, rule.error_message);
        case FaultAction::kDelay:
          c_delays_->Increment();
          h_delay_units_->Record(rule.delay_units);
          now_ += rule.delay_units;
          sleep_ms = rule.delay_sleep_ms;
          break;
        case FaultAction::kDuplicate:
          c_duplicates_->Increment();
          duplicate = true;
          break;
      }
      break;  // first firing rule decides
    }
    c_delivered_->Increment();
  }
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  Result<std::string> response = inner_->Call(to, from, request);
  if (duplicate) {
    // Second delivery of the same request; its response is discarded, matching
    // the at-least-once behaviour of a retransmitting network.
    (void)inner_->Call(to, from, request);
  }
  return response;
}

}  // namespace net
}  // namespace pgrid
