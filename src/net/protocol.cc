#include "net/protocol.h"

namespace pgrid {
namespace net {

namespace {

void WriteEntry(ByteWriter* w, const WireEntry& e) {
  w->WriteString(e.holder);
  w->WriteU64(e.item_id);
  w->WriteKeyPath(e.key);
  w->WriteU64(e.version);
}

Result<WireEntry> ReadEntry(ByteReader* r) {
  WireEntry e;
  PGRID_ASSIGN_OR_RETURN(e.holder, r->ReadString());
  PGRID_ASSIGN_OR_RETURN(e.item_id, r->ReadU64());
  PGRID_ASSIGN_OR_RETURN(e.key, r->ReadKeyPath());
  PGRID_ASSIGN_OR_RETURN(e.version, r->ReadU64());
  return e;
}

void WriteEntryList(ByteWriter* w, const std::vector<WireEntry>& v) {
  w->WriteU32(static_cast<uint32_t>(v.size()));
  for (const WireEntry& e : v) WriteEntry(w, e);
}

Result<std::vector<WireEntry>> ReadEntryList(ByteReader* r) {
  PGRID_ASSIGN_OR_RETURN(uint32_t count, r->ReadU32());
  if (count > kMaxWireCollection) {
    return Status::InvalidArgument("entry list too large");
  }
  std::vector<WireEntry> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PGRID_ASSIGN_OR_RETURN(WireEntry e, ReadEntry(r));
    out.push_back(std::move(e));
  }
  return out;
}

void WriteRefLevels(ByteWriter* w, const std::vector<WireRefLevel>& v) {
  w->WriteU32(static_cast<uint32_t>(v.size()));
  for (const WireRefLevel& rl : v) {
    w->WriteU32(rl.level);
    w->WriteStringList(rl.addresses);
  }
}

Result<std::vector<WireRefLevel>> ReadRefLevels(ByteReader* r) {
  PGRID_ASSIGN_OR_RETURN(uint32_t count, r->ReadU32());
  if (count > kMaxWireCollection) {
    return Status::InvalidArgument("ref level list too large");
  }
  std::vector<WireRefLevel> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireRefLevel rl;
    PGRID_ASSIGN_OR_RETURN(rl.level, r->ReadU32());
    PGRID_ASSIGN_OR_RETURN(rl.addresses, r->ReadStringList());
    out.push_back(std::move(rl));
  }
  return out;
}

ByteWriter Tagged(MsgType type) {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(type));
  return w;
}

Status CheckTag(ByteReader* r, MsgType expected) {
  PGRID_ASSIGN_OR_RETURN(uint8_t tag, r->ReadU8());
  if (tag != static_cast<uint8_t>(expected)) {
    return Status::InvalidArgument("unexpected message type " + std::to_string(tag));
  }
  return Status::OK();
}

}  // namespace

std::string EncodePing() { return Tagged(MsgType::kPing).Take(); }
std::string EncodePong() { return Tagged(MsgType::kPong).Take(); }

std::string EncodeError(const std::string& message) {
  ByteWriter w = Tagged(MsgType::kError);
  w.WriteString(message);
  return w.Take();
}

std::string EncodeQueryRequest(const QueryRequest& m) {
  ByteWriter w = Tagged(MsgType::kQueryReq);
  w.WriteKeyPath(m.key);
  w.WriteU32(m.consumed);
  return w.Take();
}

std::string EncodeQueryResponseFound(const QueryResponseFound& m) {
  ByteWriter w = Tagged(MsgType::kQueryRespFound);
  w.WriteString(m.responder);
  WriteEntryList(&w, m.entries);
  return w.Take();
}

std::string EncodeQueryResponseForward(const QueryResponseForward& m) {
  ByteWriter w = Tagged(MsgType::kQueryRespForward);
  w.WriteU32(m.consumed);
  w.WriteKeyPath(m.remaining);
  w.WriteStringList(m.candidates);
  return w.Take();
}

std::string EncodeQueryResponseMiss() {
  return Tagged(MsgType::kQueryRespMiss).Take();
}

std::string EncodePublishRequest(const PublishRequest& m) {
  ByteWriter w = Tagged(MsgType::kPublishReq);
  WriteEntry(&w, m.entry);
  w.WriteU8(m.forward_to_buddies);
  return w.Take();
}

std::string EncodePublishAck(const PublishAck& m) {
  ByteWriter w = Tagged(MsgType::kPublishAck);
  w.WriteU8(m.installed);
  w.WriteU32(m.buddies_notified);
  return w.Take();
}

std::string EncodeExchangeRequest(const ExchangeRequest& m) {
  ByteWriter w = Tagged(MsgType::kExchangeReq);
  w.WriteString(m.initiator);
  w.WriteU64(m.epoch);
  w.WriteKeyPath(m.path);
  WriteRefLevels(&w, m.refs);
  w.WriteU32(m.depth);
  return w.Take();
}

std::string EncodeExchangeResponse(const ExchangeResponse& m) {
  ByteWriter w = Tagged(MsgType::kExchangeResp);
  w.WriteU64(m.epoch);
  w.WriteKeyPath(m.append_bits);
  WriteRefLevels(&w, m.ref_updates);
  w.WriteStringList(m.referrals);
  w.WriteU8(m.buddy);
  WriteEntryList(&w, m.entries);
  return w.Take();
}

std::string EncodeEntryPushRequest(const EntryPushRequest& m) {
  ByteWriter w = Tagged(MsgType::kEntryPushReq);
  WriteEntryList(&w, m.entries);
  return w.Take();
}

std::string EncodeEntryPushResponse(const EntryPushResponse& m) {
  ByteWriter w = Tagged(MsgType::kEntryPushResp);
  WriteEntryList(&w, m.rejected);
  return w.Take();
}

std::string EncodeCommitRequest(const CommitRequest& m) {
  ByteWriter w = Tagged(MsgType::kCommitReq);
  w.WriteU32(m.level);
  w.WriteU8(m.bit);
  return w.Take();
}

std::string EncodeCommitAck() { return Tagged(MsgType::kCommitAck).Take(); }

std::string EncodeStatsRequest() { return Tagged(MsgType::kStatsReq).Take(); }

std::string EncodeStatsResponse(const StatsResponse& m) {
  ByteWriter w = Tagged(MsgType::kStatsResp);
  w.WriteString(m.json);
  return w.Take();
}

Result<StatsResponse> DecodeStatsResponse(const std::string& payload) {
  ByteReader r(payload);
  PGRID_RETURN_IF_ERROR(CheckTag(&r, MsgType::kStatsResp));
  StatsResponse m;
  PGRID_ASSIGN_OR_RETURN(m.json, r.ReadString());
  return m;
}

std::string EncodeProbeRequest() { return Tagged(MsgType::kProbeReq).Take(); }

std::string EncodeProbeResponse(const ProbeResponse& m) {
  ByteWriter w = Tagged(MsgType::kProbeResp);
  w.WriteKeyPath(m.path);
  w.WriteU32(m.entry_count);
  w.WriteU64(m.index_digest);
  return w.Take();
}

Result<ProbeResponse> DecodeProbeResponse(const std::string& payload) {
  ByteReader r(payload);
  PGRID_RETURN_IF_ERROR(CheckTag(&r, MsgType::kProbeResp));
  ProbeResponse m;
  PGRID_ASSIGN_OR_RETURN(m.path, r.ReadKeyPath());
  PGRID_ASSIGN_OR_RETURN(m.entry_count, r.ReadU32());
  PGRID_ASSIGN_OR_RETURN(m.index_digest, r.ReadU64());
  return m;
}

Result<CommitRequest> DecodeCommitRequest(const std::string& payload) {
  ByteReader r(payload);
  PGRID_RETURN_IF_ERROR(CheckTag(&r, MsgType::kCommitReq));
  CommitRequest m;
  PGRID_ASSIGN_OR_RETURN(m.level, r.ReadU32());
  PGRID_ASSIGN_OR_RETURN(m.bit, r.ReadU8());
  return m;
}

Result<MsgType> PeekType(const std::string& payload) {
  if (payload.empty()) return Status::InvalidArgument("empty message");
  const uint8_t tag = static_cast<uint8_t>(payload[0]);
  if (tag < static_cast<uint8_t>(MsgType::kPing) ||
      tag > static_cast<uint8_t>(MsgType::kTraced)) {
    return Status::InvalidArgument("unknown message type " + std::to_string(tag));
  }
  return static_cast<MsgType>(tag);
}

std::string EncodeTraced(const obs::TraceContext& ctx, std::string_view inner) {
  ByteWriter w = Tagged(MsgType::kTraced);
  w.WriteU64(ctx.trace_id);
  w.WriteU64(ctx.parent_span);
  w.WriteU32(ctx.depth);
  w.WriteU32(0);  // reserved for future envelope extensions (baggage, flags)
  // The inner message is appended raw (no length prefix): it is simply the rest
  // of the payload, so wrapping never hits collection-size caps.
  std::string out = w.Take();
  out.append(inner);
  return out;
}

Result<TracedEnvelope> DecodeTraced(const std::string& payload) {
  ByteReader r(payload);
  PGRID_RETURN_IF_ERROR(CheckTag(&r, MsgType::kTraced));
  TracedEnvelope m;
  PGRID_ASSIGN_OR_RETURN(m.ctx.trace_id, r.ReadU64());
  PGRID_ASSIGN_OR_RETURN(m.ctx.parent_span, r.ReadU64());
  PGRID_ASSIGN_OR_RETURN(m.ctx.depth, r.ReadU32());
  PGRID_ASSIGN_OR_RETURN(uint32_t reserved, r.ReadU32());
  if (reserved != 0) {
    return Status::InvalidArgument("traced envelope: unsupported extension " +
                                   std::to_string(reserved));
  }
  if (m.ctx.trace_id == 0) {
    return Status::InvalidArgument("traced envelope: zero trace id");
  }
  m.inner = r.ReadRest();
  if (m.inner.empty()) {
    return Status::InvalidArgument("traced envelope: empty inner message");
  }
  const Result<MsgType> inner_type = PeekType(m.inner);
  if (!inner_type.ok()) return inner_type.status();
  if (*inner_type == MsgType::kTraced) {
    return Status::InvalidArgument("traced envelope: nested envelope");
  }
  return m;
}

Result<QueryRequest> DecodeQueryRequest(const std::string& payload) {
  ByteReader r(payload);
  PGRID_RETURN_IF_ERROR(CheckTag(&r, MsgType::kQueryReq));
  QueryRequest m;
  PGRID_ASSIGN_OR_RETURN(m.key, r.ReadKeyPath());
  PGRID_ASSIGN_OR_RETURN(m.consumed, r.ReadU32());
  return m;
}

Result<QueryResponseFound> DecodeQueryResponseFound(const std::string& payload) {
  ByteReader r(payload);
  PGRID_RETURN_IF_ERROR(CheckTag(&r, MsgType::kQueryRespFound));
  QueryResponseFound m;
  PGRID_ASSIGN_OR_RETURN(m.responder, r.ReadString());
  PGRID_ASSIGN_OR_RETURN(m.entries, ReadEntryList(&r));
  return m;
}

Result<QueryResponseForward> DecodeQueryResponseForward(const std::string& payload) {
  ByteReader r(payload);
  PGRID_RETURN_IF_ERROR(CheckTag(&r, MsgType::kQueryRespForward));
  QueryResponseForward m;
  PGRID_ASSIGN_OR_RETURN(m.consumed, r.ReadU32());
  PGRID_ASSIGN_OR_RETURN(m.remaining, r.ReadKeyPath());
  PGRID_ASSIGN_OR_RETURN(m.candidates, r.ReadStringList());
  return m;
}

Result<PublishRequest> DecodePublishRequest(const std::string& payload) {
  ByteReader r(payload);
  PGRID_RETURN_IF_ERROR(CheckTag(&r, MsgType::kPublishReq));
  PublishRequest m;
  PGRID_ASSIGN_OR_RETURN(m.entry, ReadEntry(&r));
  PGRID_ASSIGN_OR_RETURN(m.forward_to_buddies, r.ReadU8());
  return m;
}

Result<PublishAck> DecodePublishAck(const std::string& payload) {
  ByteReader r(payload);
  PGRID_RETURN_IF_ERROR(CheckTag(&r, MsgType::kPublishAck));
  PublishAck m;
  PGRID_ASSIGN_OR_RETURN(m.installed, r.ReadU8());
  PGRID_ASSIGN_OR_RETURN(m.buddies_notified, r.ReadU32());
  return m;
}

Result<ExchangeRequest> DecodeExchangeRequest(const std::string& payload) {
  ByteReader r(payload);
  PGRID_RETURN_IF_ERROR(CheckTag(&r, MsgType::kExchangeReq));
  ExchangeRequest m;
  PGRID_ASSIGN_OR_RETURN(m.initiator, r.ReadString());
  PGRID_ASSIGN_OR_RETURN(m.epoch, r.ReadU64());
  PGRID_ASSIGN_OR_RETURN(m.path, r.ReadKeyPath());
  PGRID_ASSIGN_OR_RETURN(m.refs, ReadRefLevels(&r));
  PGRID_ASSIGN_OR_RETURN(m.depth, r.ReadU32());
  return m;
}

Result<ExchangeResponse> DecodeExchangeResponse(const std::string& payload) {
  ByteReader r(payload);
  PGRID_RETURN_IF_ERROR(CheckTag(&r, MsgType::kExchangeResp));
  ExchangeResponse m;
  PGRID_ASSIGN_OR_RETURN(m.epoch, r.ReadU64());
  PGRID_ASSIGN_OR_RETURN(m.append_bits, r.ReadKeyPath());
  PGRID_ASSIGN_OR_RETURN(m.ref_updates, ReadRefLevels(&r));
  PGRID_ASSIGN_OR_RETURN(m.referrals, r.ReadStringList());
  PGRID_ASSIGN_OR_RETURN(m.buddy, r.ReadU8());
  PGRID_ASSIGN_OR_RETURN(m.entries, ReadEntryList(&r));
  return m;
}

Result<EntryPushRequest> DecodeEntryPushRequest(const std::string& payload) {
  ByteReader r(payload);
  PGRID_RETURN_IF_ERROR(CheckTag(&r, MsgType::kEntryPushReq));
  EntryPushRequest m;
  PGRID_ASSIGN_OR_RETURN(m.entries, ReadEntryList(&r));
  return m;
}

Result<EntryPushResponse> DecodeEntryPushResponse(const std::string& payload) {
  ByteReader r(payload);
  PGRID_RETURN_IF_ERROR(CheckTag(&r, MsgType::kEntryPushResp));
  EntryPushResponse m;
  PGRID_ASSIGN_OR_RETURN(m.rejected, ReadEntryList(&r));
  return m;
}

Result<std::string> DecodeError(const std::string& payload) {
  ByteReader r(payload);
  PGRID_RETURN_IF_ERROR(CheckTag(&r, MsgType::kError));
  return r.ReadString();
}

}  // namespace net
}  // namespace pgrid
