// TCP socket transport: length-prefixed request/response frames.
//
// Addresses are "host:port" strings (IPv4). Each served address runs an acceptor
// thread; each accepted connection is handled on its own thread (read one request
// frame, invoke the handler, write one response frame, close). Call() opens a fresh
// connection per request -- simple, stateless, and adequate for the protocol's
// message sizes; a production deployment would pool connections.
//
// Frame layout: u32 total length, then u32 from-length + from bytes, then payload.

#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/transport.h"
#include "obs/metrics.h"

namespace pgrid {
namespace net {

/// RPC transport over TCP sockets.
class TcpTransport : public RpcTransport {
 public:
  /// `registry` is where the transport's RPC metrics live ("rpc.*" names); pass
  /// one shared with the node it carries so a single kStats scrape covers both,
  /// or null to let the transport own a private registry.
  explicit TcpTransport(obs::MetricsRegistry* registry = nullptr);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Status Serve(const std::string& address, Handler handler) override;
  void StopServing(const std::string& address) override;
  Result<std::string> Call(const std::string& to, const std::string& from,
                           const std::string& request) override;

  /// Binds an ephemeral port on `host` and serves `handler`; returns the concrete
  /// "host:port" address. The convenient form for tests.
  Result<std::string> ServeAnyPort(const std::string& host, Handler handler);

  /// Per-call socket timeout (connect/read/write), milliseconds.
  void set_timeout_ms(int ms) { timeout_ms_ = ms; }

  /// The registry backing the transport's RPC metrics (shared or owned).
  obs::MetricsRegistry& metrics() { return *metrics_; }

 private:
  struct Server;

  Status ServeInternal(const std::string& host, int port, Handler handler,
                       std::string* actual_address);

  std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Server>> servers_;
  int timeout_ms_ = 5000;

  // Client-side RPC instruments, cached once at construction (see Call).
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // set iff none was passed
  obs::MetricsRegistry* metrics_;
  obs::Counter* c_calls_;
  obs::Counter* c_connect_errors_;
  obs::Counter* c_timeouts_;
  obs::Counter* c_bytes_sent_;
  obs::Counter* c_bytes_received_;
  obs::Counter* c_requests_served_;
  obs::Histogram* h_call_latency_us_;
  obs::Histogram* h_request_bytes_;
  obs::Histogram* h_response_bytes_;
};

}  // namespace net
}  // namespace pgrid
