// Request/response transport abstraction for networked P-Grid nodes.
//
// P-Grid's interactions (query routing, exchanges, publishes) are all
// request/response, so the transport is a blocking RPC interface: a node serves a
// handler under its address, and anyone can Call(address, request) and wait for the
// reply. Implementations:
//   - InProcTransport:          a process-local bus for tests and examples,
//   - TcpTransport:             real sockets on localhost/LAN (length-prefixed
//                               frames),
//   - FaultInjectingTransport:  a decorator applying a seeded fault-rule table
//                               (drops, delays, duplicates, errors, partitions)
//                               to any inner transport -- see fault_transport.h.
// Retries around Call are layered on top (retry.h), not inside the transports.
//
// Handlers may issue outbound Calls (multi-hop routing, recursive exchanges) but
// must never do so while holding locks that an inbound call could need -- see
// PGridNode for the locking discipline.

#pragma once

#include <functional>
#include <string>

#include "util/result.h"

namespace pgrid {
namespace net {

/// Blocking request/response transport.
class RpcTransport {
 public:
  /// Handles one request: (caller address, request bytes) -> response bytes.
  using Handler = std::function<std::string(const std::string& from,
                                            const std::string& request)>;

  virtual ~RpcTransport() = default;

  /// Starts serving `handler` under `address`. AlreadyExists if the address is
  /// taken; implementation-specific errors (e.g. bind failure) otherwise.
  virtual Status Serve(const std::string& address, Handler handler) = 0;

  /// Stops serving `address`. Idempotent.
  virtual void StopServing(const std::string& address) = 0;

  /// Sends `request` to the node at `to` and waits for its response.
  /// Unavailable if the target is not reachable (offline node, refused
  /// connection, dropped message).
  virtual Result<std::string> Call(const std::string& to, const std::string& from,
                                   const std::string& request) = 0;
};

}  // namespace net
}  // namespace pgrid
