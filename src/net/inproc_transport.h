// Process-local RPC transport: a registry of handlers keyed by address.
//
// Calls are executed synchronously on the caller's thread. Fault injection is
// not implemented here: the bus is wrapped in a FaultInjectingTransport, so
// every scenario the rule table can express (seeded loss, outages, partitions,
// scripted schedules) is available on an in-process cluster via faults(). The
// historical (loss_probability, seed) constructor remains as a shim that arms
// one probabilistic drop rule.

#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "net/fault_transport.h"
#include "net/transport.h"

namespace pgrid {
namespace net {

/// In-process transport with rule-table fault injection.
class InProcTransport : public RpcTransport {
 public:
  /// `loss_probability` > 0 arms a drop-everything-with-probability-p rule on
  /// the embedded fault layer (the legacy lossy-bus behaviour).
  explicit InProcTransport(double loss_probability = 0.0, uint64_t seed = 0);

  Status Serve(const std::string& address, Handler handler) override;
  void StopServing(const std::string& address) override;
  Result<std::string> Call(const std::string& to, const std::string& from,
                           const std::string& request) override;

  /// Simulates an outage: calls to `address` fail until ClearOutage.
  void InjectOutage(const std::string& address);
  void ClearOutage(const std::string& address);

  /// The fault layer every call passes through; arm rules here for scripted
  /// scenarios (drops, delays, duplicates, errors, partitions).
  FaultInjectingTransport& faults() { return faults_; }

  /// Number of calls that reached a handler.
  uint64_t delivered_calls() const;

 private:
  /// The fault-free local bus the fault layer decorates.
  class Bus : public RpcTransport {
   public:
    Status Serve(const std::string& address, Handler handler) override;
    void StopServing(const std::string& address) override;
    Result<std::string> Call(const std::string& to, const std::string& from,
                             const std::string& request) override;
    uint64_t delivered_calls() const;

   private:
    mutable std::mutex mu_;
    std::unordered_map<std::string, Handler> handlers_;
    uint64_t delivered_ = 0;
  };

  Bus bus_;
  FaultInjectingTransport faults_;
};

}  // namespace net
}  // namespace pgrid
