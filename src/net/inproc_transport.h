// Process-local RPC transport: a registry of handlers keyed by address.
//
// Calls are executed synchronously on the caller's thread. Optional fault injection
// (message loss probability, per-address outages) makes it the vehicle for testing
// node behaviour under failure without sockets.

#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "net/transport.h"
#include "util/rng.h"

namespace pgrid {
namespace net {

/// In-process transport with fault injection.
class InProcTransport : public RpcTransport {
 public:
  /// `loss_probability` drops each call with that probability (as Unavailable).
  explicit InProcTransport(double loss_probability = 0.0, uint64_t seed = 0);

  Status Serve(const std::string& address, Handler handler) override;
  void StopServing(const std::string& address) override;
  Result<std::string> Call(const std::string& to, const std::string& from,
                           const std::string& request) override;

  /// Simulates an outage: calls to `address` fail until ClearOutage.
  void InjectOutage(const std::string& address);
  void ClearOutage(const std::string& address);

  /// Number of calls that reached a handler.
  uint64_t delivered_calls() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, Handler> handlers_;
  std::unordered_set<std::string> outages_;
  double loss_probability_;
  Rng rng_;
  uint64_t delivered_ = 0;
};

}  // namespace net
}  // namespace pgrid
