#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <vector>

#include "util/logging.h"
#include "util/macros.h"

namespace pgrid {
namespace net {

namespace {

/// Writes exactly `len` bytes; false on error/EOF.
bool WriteAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Reads exactly `len` bytes; false on error/EOF.
bool ReadAll(int fd, char* data, size_t len) {
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n <= 0) return false;
    got += static_cast<size_t>(n);
  }
  return true;
}

constexpr uint32_t kMaxFrame = 64u << 20;  // 64 MiB sanity cap

bool WriteFrame(int fd, const std::string& payload) {
  uint32_t len = static_cast<uint32_t>(payload.size());
  char hdr[4];
  std::memcpy(hdr, &len, 4);
  return WriteAll(fd, hdr, 4) && WriteAll(fd, payload.data(), payload.size());
}

bool ReadFrame(int fd, std::string* payload) {
  char hdr[4];
  if (!ReadAll(fd, hdr, 4)) return false;
  uint32_t len;
  std::memcpy(&len, hdr, 4);
  if (len > kMaxFrame) return false;
  payload->resize(len);
  return len == 0 || ReadAll(fd, payload->data(), len);
}

Status ParseAddress(const std::string& address, std::string* host, int* port) {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("address must be host:port, got " + address);
  }
  *host = address.substr(0, colon);
  *port = std::atoi(address.c_str() + colon + 1);
  if (*port < 0 || *port > 65535) {
    return Status::InvalidArgument("bad port in address " + address);
  }
  return Status::OK();
}

void SetTimeouts(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

struct TcpTransport::Server {
  int listen_fd = -1;
  std::thread acceptor;
  Handler handler;
  std::atomic<bool> stopping{false};
  std::atomic<int> active_connections{0};

  ~Server() {
    // StopServing already closed the socket and joined; this is a backstop.
    if (listen_fd >= 0) ::close(listen_fd);
  }
};

TcpTransport::TcpTransport(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_metrics_.get();
  }
  metrics_ = registry;
  c_calls_ = metrics_->GetCounter("rpc.calls");
  c_connect_errors_ = metrics_->GetCounter("rpc.connect_errors");
  c_timeouts_ = metrics_->GetCounter("rpc.timeouts");
  c_bytes_sent_ = metrics_->GetCounter("rpc.bytes_sent");
  c_bytes_received_ = metrics_->GetCounter("rpc.bytes_received");
  c_requests_served_ = metrics_->GetCounter("rpc.requests_served");
  h_call_latency_us_ = metrics_->GetHistogram("rpc.call_latency_us", obs::LatencyBoundsUs());
  h_request_bytes_ = metrics_->GetHistogram("rpc.request_bytes", obs::SizeBoundsBytes());
  h_response_bytes_ = metrics_->GetHistogram("rpc.response_bytes", obs::SizeBoundsBytes());
  PGRID_CHECK(c_calls_ && c_connect_errors_ && c_timeouts_ && c_bytes_sent_ &&
              c_bytes_received_ && c_requests_served_ && h_call_latency_us_ &&
              h_request_bytes_ && h_response_bytes_);
}

TcpTransport::~TcpTransport() {
  std::vector<std::string> addresses;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [addr, server] : servers_) addresses.push_back(addr);
  }
  for (const std::string& addr : addresses) StopServing(addr);
}

Status TcpTransport::Serve(const std::string& address, Handler handler) {
  std::string host;
  int port = 0;
  PGRID_RETURN_IF_ERROR(ParseAddress(address, &host, &port));
  std::string actual;
  return ServeInternal(host, port, std::move(handler), &actual);
}

Result<std::string> TcpTransport::ServeAnyPort(const std::string& host,
                                               Handler handler) {
  std::string actual;
  PGRID_RETURN_IF_ERROR(ServeInternal(host, 0, std::move(handler), &actual));
  return actual;
}

Status TcpTransport::ServeInternal(const std::string& host, int port, Handler handler,
                                   std::string* actual_address) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad IPv4 host: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Unavailable("bind failed for " + host + ":" +
                               std::to_string(port));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::Internal("listen failed");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  *actual_address = host + ":" + std::to_string(ntohs(bound.sin_port));

  auto server = std::make_shared<Server>();
  server->listen_fd = fd;
  server->handler = std::move(handler);

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (servers_.contains(*actual_address)) {
      ::close(fd);
      return Status::AlreadyExists("address " + *actual_address + " already served");
    }
    servers_[*actual_address] = server;
  }

  const int timeout_ms = timeout_ms_;
  // The served counter is safe to capture raw: StopServing (and thus the
  // transport destructor) joins the acceptor and waits for connection threads.
  obs::Counter* served = c_requests_served_;
  server->acceptor = std::thread([server, timeout_ms, served]() {
    while (!server->stopping.load()) {
      int conn = ::accept(server->listen_fd, nullptr, nullptr);
      if (conn < 0) {
        if (server->stopping.load()) break;
        continue;
      }
      SetTimeouts(conn, timeout_ms);
      int flag = 1;
      ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag));
      server->active_connections.fetch_add(1);
      std::thread([server, conn, served]() {
        std::string frame;
        if (ReadFrame(conn, &frame)) {
          // Frame: u32 from-length + from + request payload.
          std::string from, request;
          if (frame.size() >= 4) {
            uint32_t from_len;
            std::memcpy(&from_len, frame.data(), 4);
            if (4 + static_cast<size_t>(from_len) <= frame.size()) {
              from.assign(frame, 4, from_len);
              request.assign(frame, 4 + from_len, std::string::npos);
              std::string response = server->handler(from, request);
              served->Increment();
              WriteFrame(conn, response);
            }
          }
        }
        ::close(conn);
        server->active_connections.fetch_sub(1);
      }).detach();
    }
  });
  return Status::OK();
}

void TcpTransport::StopServing(const std::string& address) {
  std::shared_ptr<Server> server;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = servers_.find(address);
    if (it == servers_.end()) return;
    server = it->second;
    servers_.erase(it);
  }
  server->stopping.store(true);
  ::shutdown(server->listen_fd, SHUT_RDWR);
  ::close(server->listen_fd);
  server->listen_fd = -1;
  if (server->acceptor.joinable()) server->acceptor.join();
  // Wait briefly for in-flight connection threads (they hold a shared_ptr to the
  // server, so even if they outlive this loop nothing dangles).
  for (int i = 0; i < 100 && server->active_connections.load() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

Result<std::string> TcpTransport::Call(const std::string& to, const std::string& from,
                                       const std::string& request) {
  c_calls_->Increment();
  const auto start = std::chrono::steady_clock::now();
  std::string host;
  int port = 0;
  PGRID_RETURN_IF_ERROR(ParseAddress(to, &host, &port));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  SetTimeouts(fd, timeout_ms_);
  int flag = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad IPv4 host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    c_connect_errors_->Increment();
    return Status::Unavailable("connect to " + to + " failed");
  }

  std::string frame;
  uint32_t from_len = static_cast<uint32_t>(from.size());
  frame.append(reinterpret_cast<const char*>(&from_len), 4);
  frame.append(from);
  frame.append(request);
  if (!WriteFrame(fd, frame)) {
    ::close(fd);
    c_timeouts_->Increment();
    return Status::Unavailable("send to " + to + " failed");
  }
  c_bytes_sent_->Increment(4 + frame.size());
  h_request_bytes_->Record(request.size());
  std::string response;
  if (!ReadFrame(fd, &response)) {
    ::close(fd);
    c_timeouts_->Increment();
    return Status::Unavailable("no response from " + to);
  }
  ::close(fd);
  c_bytes_received_->Increment(4 + response.size());
  h_response_bytes_->Record(response.size());
  h_call_latency_us_->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return response;
}

}  // namespace net
}  // namespace pgrid
