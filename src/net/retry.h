// Bounded retry with exponential backoff for transport calls.
//
// P-Grid's reliability story (refmax-fold redundancy, repeated queries) assumes
// that transient failures -- a dropped message, a briefly unreachable peer --
// are retried before the higher layers give up on a reference. RetryPolicy is
// that layer: bounded attempts, exponential backoff with seeded jitter, an
// overall per-call deadline, and a cross-call retry budget that caps how much
// extra load a degraded network may generate.
//
// Determinism: backoff values (including jitter) are drawn from a seeded RNG,
// so the exact backoff sequence is a function of the seed. With
// `sleep_between_attempts = false` the policy never touches the wall clock --
// the deadline is then enforced against the *virtual* sum of backoffs, which
// is what the scenario tests pin down.
//
// Only Unavailable is retryable: it is the transport's word for "the peer did
// not receive this" (offline node, refused connection, dropped message). Every
// other failure came from the peer itself and retrying would not change it.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "net/transport.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace pgrid {
namespace net {

/// Knobs of one retry policy (the CLI/daemon flags map 1:1 onto these).
struct RetryConfig {
  /// Total attempts per call, including the first. 1 = no retries (the
  /// historical single-shot behaviour; the default keeps existing callers
  /// byte-for-byte unchanged).
  size_t max_attempts = 1;

  /// Backoff before retry k (0-based) is
  ///   min(initial_backoff_ms * backoff_multiplier^k, max_backoff_ms)
  /// scaled by (1 - jitter * u), u ~ U[0,1) from the policy's seeded RNG.
  uint64_t initial_backoff_ms = 10;
  double backoff_multiplier = 2.0;
  uint64_t max_backoff_ms = 5000;
  double jitter = 0.0;  // fraction of the backoff that may be shaved off, [0,1]

  /// Overall budget for one Call() including backoff waits; exceeded attempts
  /// are not started and the call fails with DeadlineExceeded. 0 = no deadline.
  uint64_t deadline_ms = 0;

  /// Total retries this policy may spend across all calls (a deployment-wide
  /// brake against retry storms). 0 = unlimited.
  uint64_t retry_budget = 0;

  /// Sleep for the backoff between attempts. Disable in deterministic tests;
  /// the backoff arithmetic (and the deadline) still applies virtually.
  bool sleep_between_attempts = true;

  Status Validate() const;
};

/// Retrying wrapper around RpcTransport::Call. Thread-safe; one policy is
/// shared by all outbound calls of a node.
class RetryPolicy {
 public:
  /// `registry` hosts the rpc.retry* metrics; null = private registry.
  RetryPolicy(const RetryConfig& config, uint64_t seed,
              obs::MetricsRegistry* registry = nullptr);

  /// True for statuses worth retrying (only Unavailable).
  static bool IsRetryable(const Status& status) {
    return status.code() == StatusCode::kUnavailable;
  }

  /// Calls `transport->Call(to, from, request)` under this policy. Returns the
  /// first success, the first non-retryable failure, the last retryable
  /// failure once attempts/budget are exhausted, or DeadlineExceeded when the
  /// next backoff would overrun the deadline.
  Result<std::string> Call(RpcTransport* transport, const std::string& to,
                           const std::string& from, const std::string& request);

  /// The backoff (ms) for the k-th retry (0-based), consuming one jitter draw.
  /// Exposed for tests pinning the exact sequence.
  uint64_t NextBackoffMs(size_t retry_index);

  const RetryConfig& config() const { return config_; }

  /// Retries performed so far (all calls).
  uint64_t retries() const { return c_retries_->value(); }
  /// Calls that failed with attempts exhausted / deadline exceeded.
  uint64_t exhausted() const { return c_exhausted_->value(); }
  uint64_t deadline_exceeded() const { return c_deadline_->value(); }

  /// The registry holding the rpc.retry* instruments (shared or owned).
  obs::MetricsRegistry& metrics() { return *metrics_; }

 private:
  const RetryConfig config_;

  std::mutex mu_;  // guards rng_ and budget_left_
  Rng rng_;
  uint64_t budget_left_;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // set iff none was passed
  obs::MetricsRegistry* metrics_;
  obs::Counter* c_retries_;
  obs::Counter* c_exhausted_;
  obs::Counter* c_budget_exhausted_;
  obs::Counter* c_deadline_;
  obs::Histogram* h_backoff_ms_;
};

}  // namespace net
}  // namespace pgrid
