#!/usr/bin/env bash
# Runs every check script in tools/ in sequence and prints one pass/fail
# summary table at the end. Scripts keep running after a failure so a single
# red leg does not hide the state of the others; the exit code is non-zero if
# any leg failed.
#
#   tools/check_all.sh           # all eight suites
#   SEEDS=10 tools/check_all.sh  # env vars pass through to the children
#
# Each child script owns its build tree(s), so the legs are independent and a
# partial run can be resumed by invoking the failing script directly.

set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

checks=(
  check_dst.sh
  check_durability.sh
  check_faults_asan.sh
  check_macro.sh
  check_memory.sh
  check_obs.sh
  check_parallel_tsan.sh
  check_repair.sh
)

declare -a names results times
failed=0

for script in "${checks[@]}"; do
  echo
  echo "==================================================================="
  echo "== ${script}"
  echo "==================================================================="
  start=$(date +%s)
  if "${repo_root}/tools/${script}"; then
    results+=("PASS")
  else
    results+=("FAIL")
    failed=1
  fi
  names+=("${script}")
  times+=("$(($(date +%s) - start))s")
done

echo
echo "===================== check_all summary ====================="
printf '%-28s %-6s %s\n' "script" "result" "time"
printf '%-28s %-6s %s\n' "------" "------" "----"
for i in "${!names[@]}"; do
  printf '%-28s %-6s %s\n' "${names[$i]}" "${results[$i]}" "${times[$i]}"
done
echo "=============================================================="

exit "${failed}"
