#!/usr/bin/env bash
# Parallel-correctness gate, three legs:
#
#   1. TSan leg -- the multi-threaded simulation suite (ctest label `parallel`)
#      under ThreadSanitizer in its own build tree. The builder's correctness
#      argument rests on the edge-colored waves being conflict-free and on the
#      pool hand-off establishing happens-before; TSan checks exactly those
#      claims against the real thread pool (lock-free index claiming,
#      deferred-recursion hand-off, lane-sharded ledgers, relaxed-atomic load
#      counters).
#   2. Fuzzer thread sweep -- `pgrid fuzz --thread-sweep` (also under TSan):
#      50 generated scenarios, each routing its exchange steps through the
#      parallel builder at a random thread count in {1,2,4,8}, each re-executed
#      at builder_threads=1; any digest mismatch or invariant violation fails.
#   3. Scaling guard -- a release (non-sanitized) build runs the
#      ParallelScalingTest regression guard and a quick
#      bench_t1_peers_vs_exchanges scaling sweep, then checks the resulting
#      BENCH_parallel_build.json: on hosts with >= 4 cores any multi-threaded
#      row slower than its size's t=1 row fails; on smaller hosts (this CI
#      container exposes one core, where speedup is physically impossible) the
#      bound degrades to no-collapse (>= 0.5x t=1), which the old claim-loop
#      scheduler failed and the wave schedule passes.
#
#   tools/check_parallel_tsan.sh                  # all three legs
#   tools/check_parallel_tsan.sh -L parallel -V   # extra args go to the TSan ctest
#
# Env: BUILD_DIR (default build-tsan), RELEASE_BUILD_DIR (default build),
#      SKIP_SCALING=1 to stop after the TSan legs.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build-tsan}"
release_dir="${RELEASE_BUILD_DIR:-${repo_root}/build}"

# ---- leg 1: parallel suite under TSan --------------------------------------

cmake -B "${build_dir}" -S "${repo_root}" \
  -DPGRID_SANITIZE=thread \
  -DPGRID_BUILD_BENCHMARKS=OFF \
  -DPGRID_BUILD_EXAMPLES=OFF

cmake --build "${build_dir}" -j "$(nproc)" --target \
  thread_pool_test wave_schedule_test parallel_builder_test \
  parallel_workload_test parallel_scaling_test pgrid

if [ "$#" -gt 0 ]; then
  ctest --test-dir "${build_dir}" --output-on-failure "$@"
else
  ctest --test-dir "${build_dir}" --output-on-failure -L parallel
fi

# ---- leg 2: fuzzer thread sweep under TSan ---------------------------------

echo "== fuzzer thread sweep (50 seeds, builder_threads in {1,2,4,8}) =="
"${build_dir}/tools/pgrid" fuzz --seeds=50 --thread-sweep --keep-going

if [ "${SKIP_SCALING:-0}" = "1" ]; then
  echo "SKIP_SCALING=1: done after TSan legs."
  exit 0
fi

# ---- leg 3: scaling guard (release build) ----------------------------------

cmake -B "${release_dir}" -S "${repo_root}"
cmake --build "${release_dir}" -j "$(nproc)" --target \
  parallel_scaling_test bench_t1_peers_vs_exchanges

echo "== scaling regression guard (4k peers, t=1 vs t=4) =="
ctest --test-dir "${release_dir}" --output-on-failure -R ParallelScalingTest

echo "== bench scaling sweep + JSON monotonicity check =="
bench_json="${release_dir}/BENCH_parallel_build_ci.json"
(cd "${release_dir}" && ./bench/bench_t1_peers_vs_exchanges \
  --trials=1 --par-peers=2000 --par-threads=1,2,4 --par-queries=4000 \
  --json="${bench_json}")

check_bench_json() {
  python3 - "$1" <<'PY'
import json, os, sys

path = sys.argv[1]
rows = json.load(open(path))["rows"]
cores = os.cpu_count() or 1
# The issue's bar where 4 lanes can actually run; no-collapse elsewhere.
floor = 1.0 if cores >= 4 else 0.5
base = {}  # peers -> t=1 meetings/s
for r in rows:
    if int(r["threads"]) == 1:
        base[int(r["peers"])] = float(r["meetings_per_sec"])
bad = []
for r in rows:
    peers, threads = int(r["peers"]), int(r["threads"])
    if threads == 1 or peers not in base:
        continue
    mps = float(r["meetings_per_sec"])
    if mps < floor * base[peers]:
        bad.append((peers, threads, mps, base[peers]))
if bad:
    for peers, threads, mps, b in bad:
        print(f"FAIL {path}: N={peers} t={threads} {mps:.0f} meet/s < "
              f"{floor:.1f}x t=1 ({b:.0f}) on a {cores}-core host")
    sys.exit(1)
print(f"OK {path}: {len(rows)} rows, floor {floor:.1f}x t=1 ({cores} cores)")
PY
}

check_bench_json "${bench_json}"
# Also vet any full-sweep report a previous bench run left in the tree.
for f in "${release_dir}"/BENCH_parallel_build.json; do
  [ -f "$f" ] && check_bench_json "$f"
done

echo "all parallel checks passed"
