#!/usr/bin/env bash
# Runs the multi-threaded simulation suite (ctest label `parallel`) under
# ThreadSanitizer, in a build tree separate from the regular one. The parallel
# builder's correctness argument rests on waves being conflict-free and on the
# barrier merge establishing happens-before; TSan checks exactly those claims
# against the real thread pool (worker claiming, deferred-recursion hand-off,
# relaxed-atomic load counters, metrics-registry instruments shared across
# shards).
#
#   tools/check_parallel_tsan.sh                  # configure + build + ctest -L parallel
#   tools/check_parallel_tsan.sh -L parallel -V   # extra args are passed to ctest
#
# Env: BUILD_DIR (default build-tsan).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build-tsan}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DPGRID_SANITIZE=thread \
  -DPGRID_BUILD_BENCHMARKS=OFF \
  -DPGRID_BUILD_EXAMPLES=OFF

cmake --build "${build_dir}" -j "$(nproc)" --target \
  thread_pool_test parallel_builder_test parallel_workload_test

if [ "$#" -gt 0 ]; then
  ctest --test-dir "${build_dir}" --output-on-failure "$@"
else
  ctest --test-dir "${build_dir}" --output-on-failure -L parallel
fi
