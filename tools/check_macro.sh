#!/usr/bin/env bash
# Runs the macro-fault suite (ctest label `macro`) plus a 50-seed macro-fault
# fuzz sweep under AddressSanitizer, in its own build tree. The macro layer
# stacks partitions, crash waves, flash crowds, gray nodes, and mass joins on
# top of the scenario runner; every sweep seed carries the heal tail (heal the
# partition, clear the gray marks, restart the durable victims) so a scenario
# that degrades is fine but one that cannot *recover* fails the sweep.
#
#   tools/check_macro.sh                 # configure + build + ctest -L macro + sweep
#   tools/check_macro.sh -L macro -V     # extra args are passed to ctest
#
# Env: BUILD_DIR (default <repo>/build-asan-macro), SANITIZER (address |
# undefined), SEEDS (default 50).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build-asan-macro}"
sanitizer="${SANITIZER:-address}"
seeds="${SEEDS:-50}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DPGRID_SANITIZE="${sanitizer}" \
  -DPGRID_BUILD_BENCHMARKS=OFF \
  -DPGRID_BUILD_EXAMPLES=OFF

cmake --build "${build_dir}" -j "$(nproc)" --target \
  macro_scenario_test gray_failure_test partition_heal_test \
  node_robustness_test pgrid

if [ "$#" -gt 0 ]; then
  ctest --test-dir "${build_dir}" --output-on-failure "$@"
else
  ctest --test-dir "${build_dir}" --output-on-failure -L macro
fi

# Macro seed sweep through the CLI: generate -> run -> heal tail -> strict
# barrier, for every seed, under the sanitizer.
"${build_dir}/tools/pgrid" fuzz --seeds="${seeds}" --macro-sweep --keep-going \
  --out="${build_dir}/macro_repro.pgs"

echo "macro suite clean under ${sanitizer} sanitizer (${seeds} sweep seeds)."
