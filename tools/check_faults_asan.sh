#!/usr/bin/env bash
# Runs the fault-injection/robustness suite (ctest label `faults`) under
# AddressSanitizer, in a build tree separate from the regular one. The fault
# layer and the retry loop are the code paths most exposed to races and
# lifetime bugs (decorated transports, handlers called twice on duplicates,
# retries outrunning shutdown), so they get a dedicated sanitized pass.
#
#   tools/check_faults_asan.sh                 # configure + build + ctest -L faults
#   tools/check_faults_asan.sh -L faults -V    # extra args are passed to ctest
#
# Env: BUILD_DIR (default build-asan), SANITIZER (address | undefined).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build-asan}"
sanitizer="${SANITIZER:-address}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DPGRID_SANITIZE="${sanitizer}" \
  -DPGRID_BUILD_BENCHMARKS=OFF \
  -DPGRID_BUILD_EXAMPLES=OFF

cmake --build "${build_dir}" -j "$(nproc)" --target \
  fault_transport_test retry_policy_test node_robustness_test \
  net_reliability_test

if [ "$#" -gt 0 ]; then
  ctest --test-dir "${build_dir}" --output-on-failure "$@"
else
  ctest --test-dir "${build_dir}" --output-on-failure -L faults
fi
