#!/usr/bin/env bash
# Memory-layout gate: keeps the compact per-peer representation honest.
#
# Two checks:
#   1. Footprint guard -- a release-mode bench_t1 parallel-scaling run at the
#      20k-peer arm writes BENCH_parallel_build.json with the measured
#      bytes_per_peer (protocol state only, counted at container capacity; see
#      Grid::ApproxMemoryBytes). The t=1 row must stay under the pinned
#      ceiling. The ceiling is set from the post-compaction measurement
#      (~480 B/peer at buddymax=32) plus slack for hash-table occupancy
#      variance; the pre-compaction layout measured ~2100 B/peer, so any
#      regression back toward vector-of-vector refs or unbounded buddy lists
#      trips the gate long before it reaches the old cost.
#   2. Allocation guard -- bench_micro_ops writes BENCH_alloc_counts.json with
#      heap allocations per key-algebra op, counted by a replaceable
#      operator new. Every inline_* row (paths <= 64 bits, the protocol's
#      routing hot path) must stay at ~0 allocations per op; the heap_* row is
#      the spill contrast case and is reported but not gated.
#
#   tools/check_memory.sh            # footprint + allocation guards
#   tools/check_memory.sh footprint  # just the 20k bytes/peer ceiling
#   tools/check_memory.sh alloc      # just the allocation counts
#
# Env: BUILD_DIR (default <repo>/build), BYTES_PER_PEER_LIMIT (default 600),
#      ALLOCS_PER_OP_LIMIT (default 0.01).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build}"
bytes_limit="${BYTES_PER_PEER_LIMIT:-600}"
alloc_limit="${ALLOCS_PER_OP_LIMIT:-0.01}"

run_footprint() {
  echo "== footprint guard: 20k-peer bytes/peer ceiling (${build_dir}) =="
  cmake -B "${build_dir}" -S "${repo_root}"
  cmake --build "${build_dir}" -j "$(nproc)" --target bench_t1_peers_vs_exchanges

  local json="${build_dir}/BENCH_memory_gate.json"
  # --trials=1 shrinks the (ungated) T1 e/N sweep; the parallel section runs
  # the 20k arm once at t=1, which is the row the gate reads.
  (cd "${build_dir}" && ./bench/bench_t1_peers_vs_exchanges --trials=1 \
    --par-peers=20000 --par-threads=1 --par-queries=2000 \
    --table-json=BENCH_memory_gate_t1.json --json="${json}")

  [ -s "${json}" ] || { echo "FAIL: ${json} missing or empty" >&2; exit 1; }

  python3 - "${json}" "${bytes_limit}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
limit = float(sys.argv[2])
rows = [r for r in report["rows"]
        if int(r["peers"]) == 20000 and int(r["threads"]) == 1]
if not rows:
    print("FAIL: no 20k-peer t=1 row in report", file=sys.stderr)
    sys.exit(1)
bpp = float(rows[0]["bytes_per_peer"])
print(f"bytes/peer at 20k peers (t=1, buddymax={rows[0].get('buddymax')}): "
      f"{bpp:.1f} (ceiling {limit:.0f})")
if not (0 < bpp <= limit):
    print(f"FAIL: {bpp:.1f} B/peer exceeds the pinned ceiling {limit:.0f}",
          file=sys.stderr)
    sys.exit(1)
EOF
  echo "footprint guard passed (report: ${json})"
}

run_alloc() {
  echo "== allocation guard: heap allocs per KeyPath op (${build_dir}) =="
  cmake -B "${build_dir}" -S "${repo_root}"
  cmake --build "${build_dir}" -j "$(nproc)" --target bench_micro_ops

  local json="${build_dir}/BENCH_alloc_counts.json"
  # --par-peers stays >= 1024: fewer peers cannot reach the parallel section's
  # depth target and its (ungated) build loop runs to the meeting cap.
  (cd "${build_dir}" && ./bench/bench_micro_ops --benchmark_filter=NONE \
    --par-peers=1024 --par-queries=2048 --alloc-json="${json}")

  [ -s "${json}" ] || { echo "FAIL: ${json} missing or empty" >&2; exit 1; }

  python3 - "${json}" "${alloc_limit}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
limit = float(sys.argv[2])
bad = []
for r in report["rows"]:
    op, rate = r["op"], float(r["allocs_per_op"])
    gated = op.startswith("inline_")
    print(f"  {op:<28} {rate:8.4f} allocs/op"
          + ("" if gated else "  (contrast row, not gated)"))
    if gated and rate >= limit:
        bad.append((op, rate))
for op, rate in bad:
    print(f"FAIL: {op} performs {rate:.4f} allocs/op (limit {limit})",
          file=sys.stderr)
if bad:
    sys.exit(1)
EOF
  echo "allocation guard passed (report: ${json})"
}

case "${1:-all}" in
  footprint) run_footprint ;;
  alloc) run_alloc ;;
  all)
    run_footprint
    run_alloc
    ;;
  *)
    echo "usage: $0 [footprint|alloc]" >&2
    exit 2
    ;;
esac

echo "memory suite clean."
