#!/usr/bin/env bash
# Runs the deterministic-simulation-test suite (ctest label `dst`) plus a
# standalone fuzz sweep under AddressSanitizer and ThreadSanitizer, each in its
# own build tree. The harness's guarantees -- same seed, same interleaving,
# byte-identical digests -- only hold if the scenario runner itself is free of
# memory errors and data races; this script checks both claims against the
# real binaries.
#
#   tools/check_dst.sh                 # asan + tsan: build, ctest -L dst, fuzz sweep
#   tools/check_dst.sh address         # just the ASan leg
#   tools/check_dst.sh thread          # just the TSan leg
#
# Env: BUILD_DIR_PREFIX (default <repo>/build), SEEDS (default 50).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
prefix="${BUILD_DIR_PREFIX:-${repo_root}/build}"
seeds="${SEEDS:-50}"

run_leg() {
  local sanitizer="$1"
  local build_dir="${prefix}-${sanitizer}-dst"
  echo "== ${sanitizer} sanitizer leg (${build_dir}) =="

  cmake -B "${build_dir}" -S "${repo_root}" \
    -DPGRID_SANITIZE="${sanitizer}" \
    -DPGRID_BUILD_BENCHMARKS=OFF \
    -DPGRID_BUILD_EXAMPLES=OFF

  cmake --build "${build_dir}" -j "$(nproc)" --target \
    invariants_test scenario_test fuzzer_test scenario_snapshot_test pgrid

  ctest --test-dir "${build_dir}" --output-on-failure -L dst

  # Seed sweep through the CLI: exercises the whole generate -> run -> check
  # pipeline (and, on failure, the shrinker + repro writer) under the sanitizer.
  "${build_dir}/tools/pgrid" fuzz --seeds="${seeds}" --keep-going \
    --out="${build_dir}/fuzz_repro.pgs"
}

case "${1:-all}" in
  address|thread) run_leg "$1" ;;
  all)
    run_leg address
    run_leg thread
    ;;
  *)
    echo "usage: $0 [address|thread]" >&2
    exit 2
    ;;
esac

echo "dst suite clean under the requested sanitizer(s) (${seeds} fuzz seeds)."
