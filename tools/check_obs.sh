#!/usr/bin/env bash
# Observability gate: proves the tracing/profiling layer is both thread-clean
# and cheap enough to leave compiled in.
#
# Two checks:
#   1. Sanitizer legs -- the obs test suite (ctest label `obs`: recorder
#      concurrency, wire-envelope round-trips, the distributed span-tree
#      acceptance test) under AddressSanitizer and ThreadSanitizer, each in its
#      own build tree. The TSan leg is what certifies the shared-recorder and
#      per-lane profiler contracts.
#   2. Overhead guard -- a release-mode bench_micro_ops run writes
#      BENCH_obs_overhead.json with the measured cost of the *disabled* hooks
#      (null-recorder span ns x instrumented sites per query / query ns); the
#      estimate must stay under 2%. This is the "tracing off is free" claim of
#      docs/observability.md, enforced.
#
#   tools/check_obs.sh              # asan + tsan legs + overhead guard
#   tools/check_obs.sh address     # just the ASan leg
#   tools/check_obs.sh thread      # just the TSan leg
#   tools/check_obs.sh overhead    # just the overhead guard
#
# Env: BUILD_DIR_PREFIX (default <repo>/build), OVERHEAD_LIMIT_PCT (default 2).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
prefix="${BUILD_DIR_PREFIX:-${repo_root}/build}"
limit_pct="${OVERHEAD_LIMIT_PCT:-2}"

run_leg() {
  local sanitizer="$1"
  local build_dir="${prefix}-${sanitizer}-obs"
  echo "== ${sanitizer} sanitizer leg (${build_dir}) =="

  cmake -B "${build_dir}" -S "${repo_root}" \
    -DPGRID_SANITIZE="${sanitizer}" \
    -DPGRID_BUILD_BENCHMARKS=OFF \
    -DPGRID_BUILD_EXAMPLES=OFF

  cmake --build "${build_dir}" -j "$(nproc)" --target \
    trace_test metrics_test obs_export_test profiler_test timeline_test \
    node_trace_test

  ctest --test-dir "${build_dir}" --output-on-failure -L obs
}

run_overhead() {
  local build_dir="${prefix}"
  echo "== overhead guard (${build_dir}) =="

  cmake -B "${build_dir}" -S "${repo_root}"
  cmake --build "${build_dir}" -j "$(nproc)" --target bench_micro_ops

  # --par-peers stays >= 1024: fewer peers cannot reach the parallel section's
  # 0.99 * maxl depth target and the build loop runs to its meeting cap.
  local json="${build_dir}/BENCH_obs_overhead.json"
  (cd "${build_dir}" && ./bench/bench_micro_ops --benchmark_filter=NONE \
    --par-peers=1024 --par-queries=2048 --obs-json="${json}")

  [ -s "${json}" ] || { echo "FAIL: ${json} missing or empty" >&2; exit 1; }

  # Pull est_off_overhead_pct out of the estimate row and compare to the limit.
  python3 - "${json}" "${limit_pct}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
limit = float(sys.argv[2])
rows = {r.get("op"): r for r in report["rows"]}
est = rows["estimate"]
pct = est["est_off_overhead_pct"]
print(f"disabled-hook cost: {est['null_site_ns']:.3f} ns/site x "
      f"{est['sites_per_query']:.1f} sites/query over "
      f"{est['query_ns_off']:.0f} ns/query = {pct:.4f}% (limit {limit}%)")
if not (0 <= pct < limit):
    print(f"FAIL: tracing-off overhead estimate {pct:.4f}% >= {limit}%",
          file=sys.stderr)
    sys.exit(1)
EOF
  echo "overhead guard passed (report: ${json})"
}

case "${1:-all}" in
  address|thread) run_leg "$1" ;;
  overhead) run_overhead ;;
  all)
    run_leg address
    run_leg thread
    run_overhead
    ;;
  *)
    echo "usage: $0 [address|thread|overhead]" >&2
    exit 2
    ;;
esac

echo "observability suite clean."
