#!/usr/bin/env bash
# Runs the durable-storage test suite (ctest label `durable`) plus the
# crash-point battery and a crash-restart fuzz sweep under AddressSanitizer.
# The storage layer's claim -- crash anywhere, recover exactly the last valid
# prefix, and a killed-and-restarted peer rejoins byte-identically -- is only
# credible if the replay and truncation paths are free of memory errors; this
# script checks the claim against the real binaries.
#
#   tools/check_durability.sh          # ASan: build, ctest -L durable, crash sweep
#
# Env: BUILD_DIR_PREFIX (default <repo>/build), SEEDS (default 50).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
prefix="${BUILD_DIR_PREFIX:-${repo_root}/build}"
seeds="${SEEDS:-50}"

build_dir="${prefix}-address-durable"
echo "== address sanitizer leg (${build_dir}) =="

cmake -B "${build_dir}" -S "${repo_root}" \
  -DPGRID_SANITIZE=address \
  -DPGRID_BUILD_BENCHMARKS=OFF \
  -DPGRID_BUILD_EXAMPLES=OFF

cmake --build "${build_dir}" -j "$(nproc)" --target \
  wal_test recovery_test snapshot_test scenario_test fuzzer_test pgrid

# The durable suite: the WAL crash-point battery (every truncation and
# bit-flip boundary) and the persist -> recover identity properties.
ctest --test-dir "${build_dir}" --output-on-failure -L durable

# Crash-restart seed sweep through the CLI: generated interleavings include
# kill (persist + wipe) and restart (recover + RejoinSync) steps, and every
# seed must pass the strict convergence barrier after its heal tail restarts
# all still-killed peers.
"${build_dir}/tools/pgrid" fuzz --seeds="${seeds}" --crash-sweep --keep-going \
  --out="${build_dir}/crash_repro.pgs"

echo "durability suite clean under AddressSanitizer (${seeds} crash-restart seeds)."
