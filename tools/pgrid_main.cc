// Entry point of the `pgrid` command line tool. All logic lives in cli/cli.h so it
// can be unit tested; this translation unit only adapts argv and the streams.

#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return pgrid::cli::RunCli(args, std::cout, std::cerr);
}
