// pgrid_node: a standalone P-Grid peer daemon.
//
// Runs one networked peer on a TCP address, optionally joining an existing grid
// through a seed peer, and gossips autonomously: at a fixed interval it meets a
// random known peer (references + buddies), which is all the construction
// algorithm needs to self-organize. Every interaction is the binary protocol of
// docs/PROTOCOL.md, so daemons interoperate across machines.
//
//   # first node
//   pgrid_node --listen=127.0.0.1:7000
//   # the rest join through any existing peer
//   pgrid_node --listen=127.0.0.1:7001 --join=127.0.0.1:7000
//
// Flags: --listen=HOST:PORT (required), --join=HOST:PORT, --maxl, --refmax,
//        --recmax, --fanout, --gossip_ms (default 500), --seed,
//        --rounds (exit after N gossip rounds; 0 = run until SIGINT/SIGTERM),
//        --publish=BITS:PAYLOAD (publish one item after joining; repeatable),
//        --maintain_every (default 10: run a self-healing maintenance round --
//        probe known peers, evict confirmed-dead references, recruit verified
//        replacements, docs/robustness.md -- every N gossip rounds; 0 = off),
//        --suspicion_threshold (default 3 consecutive failed calls to evict a
//        reference; 0 disables the failure detector),
//        --metrics-json=FILE (dump the metrics registry as JSON on shutdown;
//        while running, any peer can scrape the same registry with a kStats
//        request -- see docs/observability.md),
//        --trace-json=FILE (attach a trace recorder and dump the daemon's spans
//        in chrome://tracing format on shutdown; the daemon salts its span ids
//        with the seed so dumps from several daemons can be merged into one
//        distributed trace),
//        --storage-dir=DIR (durable persistence, docs/storage.md: key path,
//        references, buddies, index entries, and stored items survive a crash;
//        on restart the daemon recovers from snapshot + WAL and rejoins with
//        its state intact instead of starting blank),
//        --storage-sync=none|flush|fsync (WAL sync mode, default flush),
//        --compact-every=N (commits between WAL compactions, default 64).
//
// Retry flags (docs/robustness.md; a real network deserves retries, so the
// daemon defaults differ from the library's single-shot default):
//        --retry_attempts (default 3; 1 disables retries),
//        --retry_backoff_ms (default 50), --retry_multiplier (default 2),
//        --retry_max_backoff_ms (default 2000), --retry_jitter (default 0.2),
//        --retry_deadline_ms (default 0 = none).
//
// Status lines go to stdout once per ~10 gossip rounds.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "net/node.h"
#include "net/tcp_transport.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/rng.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> raw_args;
  for (int i = 1; i < argc; ++i) raw_args.emplace_back(argv[i]);
  pgrid::FlagSet flags(raw_args);

  const std::string listen = flags.GetString("listen", "");
  if (listen.empty()) {
    std::fprintf(stderr,
                 "usage: pgrid_node --listen=HOST:PORT [--join=HOST:PORT] "
                 "[--maxl=8] [--refmax=4] [--recmax=2] [--fanout=2] "
                 "[--gossip_ms=500] [--rounds=0] [--seed=...]\n");
    return 1;
  }

  pgrid::net::NodeConfig config;
  auto maxl = flags.GetInt("maxl", 8);
  auto refmax = flags.GetInt("refmax", 4);
  auto recmax = flags.GetInt("recmax", 2);
  auto fanout = flags.GetInt("fanout", 2);
  auto gossip_ms = flags.GetInt("gossip_ms", 500);
  auto rounds_flag = flags.GetInt("rounds", 0);
  auto maintain_every = flags.GetInt("maintain_every", 10);
  auto suspicion_threshold = flags.GetInt("suspicion_threshold", 3);
  auto seed = flags.GetInt("seed", static_cast<int64_t>(
                                       std::hash<std::string>{}(listen)));
  auto retry_attempts = flags.GetInt("retry_attempts", 3);
  auto retry_backoff_ms = flags.GetInt("retry_backoff_ms", 50);
  auto retry_multiplier = flags.GetDouble("retry_multiplier", 2.0);
  auto retry_max_backoff_ms = flags.GetInt("retry_max_backoff_ms", 2000);
  auto retry_jitter = flags.GetDouble("retry_jitter", 0.2);
  auto retry_deadline_ms = flags.GetInt("retry_deadline_ms", 0);
  for (const auto* r : {&maxl, &refmax, &recmax, &fanout, &gossip_ms, &rounds_flag,
                        &maintain_every, &suspicion_threshold, &seed,
                        &retry_attempts, &retry_backoff_ms,
                        &retry_max_backoff_ms, &retry_deadline_ms}) {
    if (!r->ok()) {
      std::fprintf(stderr, "error: %s\n", r->status().ToString().c_str());
      return 1;
    }
  }
  for (const auto* r : {&retry_multiplier, &retry_jitter}) {
    if (!r->ok()) {
      std::fprintf(stderr, "error: %s\n", r->status().ToString().c_str());
      return 1;
    }
  }
  config.maxl = static_cast<size_t>(maxl.value());
  config.refmax = static_cast<size_t>(refmax.value());
  config.recmax = static_cast<size_t>(recmax.value());
  config.recursion_fanout = static_cast<size_t>(fanout.value());
  config.retry.max_attempts = static_cast<size_t>(retry_attempts.value());
  config.retry.initial_backoff_ms =
      static_cast<uint64_t>(retry_backoff_ms.value());
  config.retry.backoff_multiplier = retry_multiplier.value();
  config.retry.max_backoff_ms =
      static_cast<uint64_t>(retry_max_backoff_ms.value());
  config.retry.jitter = retry_jitter.value();
  config.retry.deadline_ms = static_cast<uint64_t>(retry_deadline_ms.value());
  config.suspicion_threshold =
      static_cast<size_t>(suspicion_threshold.value());
  config.storage.dir = flags.GetString("storage-dir", "");
  {
    auto compact_every = flags.GetInt("compact-every", 64);
    if (!compact_every.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   compact_every.status().ToString().c_str());
      return 1;
    }
    config.storage.compact_every =
        static_cast<uint64_t>(compact_every.value());
    const std::string sync = flags.GetString("storage-sync", "flush");
    if (sync == "none") {
      config.storage.sync_mode = pgrid::storage::SyncMode::kNone;
    } else if (sync == "flush") {
      config.storage.sync_mode = pgrid::storage::SyncMode::kFlush;
    } else if (sync == "fsync") {
      config.storage.sync_mode = pgrid::storage::SyncMode::kFsync;
    } else {
      std::fprintf(stderr, "error: bad --storage-sync '%s' (none|flush|fsync)\n",
                   sync.c_str());
      return 1;
    }
  }
  if (pgrid::Status s = config.Validate(); !s.ok()) {
    std::fprintf(stderr, "error: bad retry flags: %s\n", s.ToString().c_str());
    return 1;
  }

  // One registry shared by the transport and the node: a single kStats scrape
  // (or the shutdown dump below) covers both the protocol and the RPC layer.
  pgrid::obs::MetricsRegistry registry;
  pgrid::net::TcpTransport transport(&registry);
  pgrid::net::PGridNode node(listen, &transport, config,
                             static_cast<uint64_t>(seed.value()), &registry);
  // One recorder per process; the salt keeps span ids from colliding when
  // several daemons' dumps are merged into one span tree offline.
  pgrid::obs::TraceRecorder trace;
  if (flags.Has("trace-json")) {
    trace.set_id_salt(static_cast<uint64_t>(seed.value()) | 1);
    node.SetTraceRecorder(&trace);
  }
  if (pgrid::Status s = node.Start(); !s.ok()) {
    std::fprintf(stderr, "error: cannot serve %s: %s\n", listen.c_str(),
                 s.ToString().c_str());
    return 1;
  }
  std::printf("pgrid_node serving on %s (maxl=%zu refmax=%zu)\n", listen.c_str(),
              config.maxl, config.refmax);
  if (node.recovered_from_disk()) {
    std::printf("recovered durable state from %s (path %s, %zu entries)\n",
                config.storage.dir.c_str(), node.path().ToString().c_str(),
                node.entries().size());
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  pgrid::Rng rng(static_cast<uint64_t>(seed.value()) + 1);
  std::vector<std::string> contacts;
  const std::string join = flags.GetString("join", "");
  if (!join.empty()) {
    contacts.push_back(join);
    if (pgrid::Status s = node.MeetWith(join); s.ok()) {
      std::printf("joined via %s\n", join.c_str());
    } else {
      std::fprintf(stderr, "warning: initial join with %s failed: %s\n",
                   join.c_str(), s.ToString().c_str());
    }
  }

  if (flags.Has("publish")) {
    const std::string spec = flags.GetString("publish", "");
    const size_t colon = spec.find(':');
    auto key = pgrid::KeyPath::FromString(
        colon == std::string::npos ? spec : spec.substr(0, colon));
    if (!key.ok()) {
      std::fprintf(stderr, "error: bad --publish key: %s\n",
                   key.status().ToString().c_str());
      return 1;
    }
    pgrid::DataItem item;
    item.id = rng.UniformInt(1, UINT64_MAX / 2);
    item.key = *key;
    item.payload = colon == std::string::npos ? "" : spec.substr(colon + 1);
    item.version = 1;
    if (pgrid::Status s = node.Publish(item); !s.ok()) {
      std::fprintf(stderr, "warning: publish failed (will rely on gossip): %s\n",
                   s.ToString().c_str());
    } else {
      std::printf("published item %llu under %s\n",
                  static_cast<unsigned long long>(item.id),
                  item.key.ToString().c_str());
    }
  }

  const int64_t max_rounds = rounds_flag.value();
  int64_t round = 0;
  while (!g_stop.load() && (max_rounds == 0 || round < max_rounds)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(gossip_ms.value()));
    ++round;
    // Refresh the gossip pool from the routing state and meet someone.
    for (const std::string& peer : node.KnownPeers()) {
      if (std::find(contacts.begin(), contacts.end(), peer) == contacts.end()) {
        contacts.push_back(peer);
      }
    }
    if (!contacts.empty()) {
      const std::string& target = contacts[rng.UniformIndex(contacts.size())];
      PGRID_DLOG << "round " << round << ": gossip meet with " << target;
      (void)node.MeetWith(target);
    }
    if (maintain_every.value() > 0 && round % maintain_every.value() == 0) {
      const size_t recruited = node.MaintainReferences();
      PGRID_DLOG << "round " << round << ": maintenance recruited " << recruited
                 << " reference(s)";
    }
    if (round % 10 == 0) {
      pgrid::net::NodeStats stats = node.stats();
      std::printf("[round %lld] path=%s known_peers=%zu entries=%zu "
                  "exchanges=%llu/%llu queries_served=%llu\n",
                  static_cast<long long>(round), node.path().ToString().c_str(),
                  contacts.size(), node.entries().size(),
                  static_cast<unsigned long long>(stats.exchanges_initiated),
                  static_cast<unsigned long long>(stats.exchanges_served),
                  static_cast<unsigned long long>(stats.queries_served));
      std::fflush(stdout);
    }
  }

  std::printf("shutting down %s (final path %s)\n", listen.c_str(),
              node.path().ToString().c_str());
  node.Stop();
  const auto dump = [](const std::string& file, const char* what,
                       const std::string& content) {
    if (FILE* f = std::fopen(file.c_str(), "w")) {
      std::fwrite(content.data(), 1, content.size(), f);
      std::fclose(f);
      std::printf("%s written to %s\n", what, file.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", file.c_str());
    }
  };
  if (flags.Has("metrics-json")) {
    dump(flags.GetString("metrics-json", ""), "metrics",
         pgrid::obs::ToJson(registry.Snapshot()));
  }
  if (flags.Has("trace-json")) {
    dump(flags.GetString("trace-json", ""), "trace",
         pgrid::obs::TraceToChromeJson(trace.events()));
  }
  return 0;
}
