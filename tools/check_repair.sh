#!/usr/bin/env bash
# Runs the self-healing test suite (ctest label `repair`) plus a heal-tail fuzz
# sweep under AddressSanitizer and ThreadSanitizer, each in its own build tree.
# The repair protocol's claim -- any survivable crash/fault interleaving is
# healed back to a converged grid within the appended repair window -- is only
# credible if the engine itself is free of memory errors and data races; this
# script checks the claim against the real binaries.
#
#   tools/check_repair.sh              # asan + tsan: build, ctest -L repair, heal sweep
#   tools/check_repair.sh address      # just the ASan leg
#   tools/check_repair.sh thread       # just the TSan leg
#
# Env: BUILD_DIR_PREFIX (default <repo>/build), SEEDS (default 50).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
prefix="${BUILD_DIR_PREFIX:-${repo_root}/build}"
seeds="${SEEDS:-50}"

run_leg() {
  local sanitizer="$1"
  local build_dir="${prefix}-${sanitizer}-repair"
  echo "== ${sanitizer} sanitizer leg (${build_dir}) =="

  cmake -B "${build_dir}" -S "${repo_root}" \
    -DPGRID_SANITIZE="${sanitizer}" \
    -DPGRID_BUILD_BENCHMARKS=OFF \
    -DPGRID_BUILD_EXAMPLES=OFF

  cmake --build "${build_dir}" -j "$(nproc)" --target \
    repair_test churn_test invariants_test scenario_test fuzzer_test \
    node_robustness_test pgrid

  ctest --test-dir "${build_dir}" --output-on-failure -L repair

  # Heal-tail seed sweep through the CLI: every generated crash/fault
  # interleaving gets a transport heal + repair window appended and must then
  # pass the strict convergence barrier (dead refs, underfull levels, and
  # replica divergence all repaired).
  "${build_dir}/tools/pgrid" fuzz --seeds="${seeds}" --heal-tail --keep-going \
    --out="${build_dir}/heal_repro.pgs"
}

case "${1:-all}" in
  address|thread) run_leg "$1" ;;
  all)
    run_leg address
    run_leg thread
    ;;
  *)
    echo "usage: $0 [address|thread]" >&2
    exit 2
    ;;
esac

echo "repair suite clean under the requested sanitizer(s) (${seeds} heal-tail seeds)."
